//! The online phase of the paper's Fig. 7.
//!
//! Jobs arrive over time. A job whose binary key has no profile in the
//! repository is **excluded from co-scheduling**: it runs exclusively on
//! the whole GPU while its profile is collected and stored. Profiled
//! jobs accumulate in the window; when `W` of them are waiting, the
//! scheduler (any [`Policy`]) drains the window.

use crate::metrics::{evaluate_decision, QueueMetrics};
use crate::policies::{Policy, ScheduleContext};
use hrp_gpusim::engine::EngineConfig;
use hrp_profile::{ProfileRepository, Profiler};
use hrp_workloads::{Job, JobQueue, Suite};

/// One processed batch: either a profiling solo run or a scheduled
/// window.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineEvent {
    /// A first-seen job ran exclusively to collect its profile.
    ProfilingRun {
        /// Benchmark name.
        name: String,
        /// Exclusive runtime (seconds).
        time: f64,
    },
    /// A full window was co-scheduled.
    WindowScheduled {
        /// Metrics of the scheduled window.
        metrics: QueueMetrics,
    },
}

/// Summary of an online session.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Everything that happened, in order.
    pub events: Vec<OnlineEvent>,
    /// Total wall time (profiling runs + window drains).
    pub total_time: f64,
    /// Total time a pure time-sharing system would have taken.
    pub time_sharing_time: f64,
}

impl OnlineReport {
    /// End-to-end throughput gain over time sharing.
    #[must_use]
    pub fn overall_gain(&self) -> f64 {
        self.time_sharing_time / self.total_time
    }

    /// Number of profiling (cold-start) runs.
    #[must_use]
    pub fn profiling_runs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, OnlineEvent::ProfilingRun { .. }))
            .count()
    }
}

/// The online scheduler driver.
pub struct OnlineSystem<'a, P: Policy> {
    suite: &'a Suite,
    policy: P,
    repo: &'a ProfileRepository,
    profiler: Profiler,
    engine: EngineConfig,
    w: usize,
    cmax: usize,
    waiting: Vec<Job>,
    events: Vec<OnlineEvent>,
    total_time: f64,
    time_sharing_time: f64,
    windows: usize,
}

impl<'a, P: Policy> OnlineSystem<'a, P> {
    /// Create an online system over an (initially possibly empty)
    /// repository.
    #[must_use]
    pub fn new(
        suite: &'a Suite,
        policy: P,
        repo: &'a ProfileRepository,
        profiler: Profiler,
        w: usize,
        cmax: usize,
    ) -> Self {
        Self {
            suite,
            policy,
            repo,
            profiler,
            engine: EngineConfig::default(),
            w,
            cmax,
            waiting: Vec::new(),
            events: Vec::new(),
            total_time: 0.0,
            time_sharing_time: 0.0,
            windows: 0,
        }
    }

    /// Submit one job by benchmark name.
    ///
    /// # Panics
    /// Panics if the name is not in the suite.
    pub fn submit(&mut self, name: &str) {
        let bench = self
            .suite
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
        let app = &self.suite.by_index(bench).app;
        self.time_sharing_time += app.solo_time;
        if !self.repo.contains(name) {
            // Fig. 7: no profile → run exclusively, collect, store.
            self.repo.profile_and_store(app, &self.profiler);
            self.total_time += app.solo_time;
            self.events.push(OnlineEvent::ProfilingRun {
                name: name.to_owned(),
                time: app.solo_time,
            });
            return;
        }
        let id = self.waiting.len();
        self.waiting.push(Job {
            id,
            name: name.to_owned(),
            bench,
        });
        if self.waiting.len() == self.w {
            self.drain_window();
        }
    }

    /// Force-schedule whatever is waiting (end of session).
    pub fn flush(&mut self) {
        if !self.waiting.is_empty() {
            self.drain_window();
        }
    }

    fn drain_window(&mut self) {
        self.windows += 1;
        let queue = JobQueue {
            label: format!("W{}", self.windows),
            jobs: std::mem::take(&mut self.waiting),
        };
        let ctx = ScheduleContext {
            suite: self.suite,
            queue: &queue,
            cmax: self.cmax,
            engine: self.engine.clone(),
        };
        let decision = self.policy.schedule(&ctx);
        decision
            .validate(&queue, self.cmax, false)
            .expect("policy produced an invalid decision");
        let metrics = evaluate_decision(&queue.label, self.suite, &queue, &decision);
        self.total_time += metrics.total_time;
        self.events.push(OnlineEvent::WindowScheduled { metrics });
    }

    /// Finish the session and report.
    #[must_use]
    pub fn finish(mut self) -> OnlineReport {
        self.flush();
        OnlineReport {
            events: self.events,
            total_time: self.total_time,
            time_sharing_time: self.time_sharing_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::MpsOnly;
    use hrp_gpusim::GpuArch;

    #[test]
    fn unprofiled_jobs_run_exclusively_then_join_windows() {
        let arch = GpuArch::a100();
        let suite = Suite::paper_suite(&arch);
        let repo = ProfileRepository::new(); // cold start: nothing profiled
        let profiler = Profiler::new(arch, 0.02, 3);
        let mut sys = OnlineSystem::new(&suite, MpsOnly, &repo, profiler, 4, 4);

        // First submissions are all cold → profiling runs.
        for name in ["lavaMD", "stream", "kmeans", "pathfinder"] {
            sys.submit(name);
        }
        // Re-submissions hit the repository and fill a window of 4.
        for name in ["lavaMD", "stream", "kmeans", "pathfinder"] {
            sys.submit(name);
        }
        let report = sys.finish();
        assert_eq!(report.profiling_runs(), 4);
        let windows = report
            .events
            .iter()
            .filter(|e| matches!(e, OnlineEvent::WindowScheduled { .. }))
            .count();
        assert_eq!(windows, 1);
        // Second wave co-ran, so the whole session beats time sharing.
        assert!(
            report.overall_gain() > 1.0,
            "gain {}",
            report.overall_gain()
        );
    }

    #[test]
    fn flush_schedules_partial_windows() {
        let arch = GpuArch::a100();
        let suite = Suite::paper_suite(&arch);
        let profiler = Profiler::new(arch, 0.02, 3);
        let repo = ProfileRepository::for_suite(&suite, &profiler);
        let mut sys = OnlineSystem::new(&suite, MpsOnly, &repo, profiler, 8, 4);
        sys.submit("lavaMD");
        sys.submit("stream");
        let report = sys.finish();
        assert_eq!(report.profiling_runs(), 0);
        assert_eq!(report.events.len(), 1);
    }
}
