//! Offline stand-in for `criterion`: the `Criterion`/`Bencher` API with
//! `criterion_group!`/`criterion_main!`, backed by a small but honest
//! harness — per-benchmark warm-up, automatic iteration-count calibration,
//! and a median-of-samples estimate. Output goes to stdout as
//! `name … median time/iter (min … max over S samples)`.
//!
//! Benchmarks keep `harness = false` in their manifests exactly as with
//! real criterion, so swapping the upstream crate back in is a
//! one-line change.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(150);
/// Samples collected per benchmark.
const SAMPLES: usize = 11;

/// Drives one benchmark's timed closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate: find an iteration count that takes a meaningful
        // slice of the target time, warming the code up along the way.
        let mut iters = 1u64;
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed * 10 >= MEASURE_TARGET || warm_start.elapsed() >= WARMUP_TARGET {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX)
            })
            .collect();
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{name:<44} {:>12}/iter  (min {} … max {}, {} iters × {} samples)",
            fmt_duration(median),
            fmt_duration(samples[0]),
            fmt_duration(*samples.last().expect("samples")),
            iters,
            SAMPLES,
        );
        self
    }
}

/// Bundle benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
