//! Dense linear-algebra kernels (f32), in per-sample and batched form.
//!
//! The Q-network is small (≲ 300k parameters), so simple cache-friendly
//! loops beat any heavyweight dependency. The per-sample kernels
//! ([`matvec`], [`matvec_transpose`], [`outer_accumulate`]) compute one
//! serial dot product per output — a reduction strict FP cannot
//! SIMD-vectorize. The batched kernels ([`matmul_bias_tn`],
//! [`matmul_dx_tn`], [`matmul_dw_accumulate`]) instead run their inner
//! loops over **independent batch lanes** in batch-minor layout (see
//! [`transpose_into`]) with the reduction blocked four-wide, so they
//! vectorize fully and stream each weight matrix once per minibatch
//! instead of once per sample — the source of the batched learning
//! step's speedup.
//!
//! Per output element the batched kernels accumulate in the same term
//! order as the per-sample kernels (modulo the four-wide grouping), so
//! batched and per-sample paths agree within float accumulation error
//! (~1e-6 relative); the equivalence tests pin this down.

/// `y = W·x + b` where `W` is `rows × cols` row-major.
///
/// # Panics
/// Panics (in debug) on shape mismatch.
#[inline]
pub fn matvec(w: &[f32], b: &[f32], x: &[f32], y: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(b.len(), rows);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        // Bias first, then k ascending — the same per-element term
        // order as [`matmul_bias_tn`] modulo its four-wide grouping, so
        // the batch-1 fast path and the batched path agree within float
        // accumulation error (~1e-6 relative), not bit-for-bit.
        let mut acc = b[r];
        for (wi, xi) in row.iter().zip(x.iter()) {
            acc += wi * xi;
        }
        *yr = acc;
    }
}

/// `x_grad = Wᵀ·dy` where `W` is `rows × cols` row-major.
#[inline]
pub fn matvec_transpose(w: &[f32], dy: &[f32], x_grad: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(dy.len(), rows);
    debug_assert_eq!(x_grad.len(), cols);
    x_grad.fill(0.0);
    for (r, &d) in dy.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = &w[r * cols..(r + 1) * cols];
        for (g, wi) in x_grad.iter_mut().zip(row.iter()) {
            *g += wi * d;
        }
    }
}

/// Rank-1 update `GW += dy ⊗ x` (the weight gradient of a dense layer).
#[inline]
pub fn outer_accumulate(gw: &mut [f32], dy: &[f32], x: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(gw.len(), rows * cols);
    debug_assert_eq!(dy.len(), rows);
    debug_assert_eq!(x.len(), cols);
    for (r, &d) in dy.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = &mut gw[r * cols..(r + 1) * cols];
        for (g, xi) in row.iter_mut().zip(x.iter()) {
            *g += d * xi;
        }
    }
}

/// Transpose a `rows × cols` row-major matrix into `dst` (resized to
/// `cols × rows`).
///
/// The batched layer kernels run their innermost loops over **batch
/// lanes**: each lane is an independent sum, so the loop vectorizes
/// without reassociating any per-element accumulation (a strict-FP f32
/// dot product cannot be SIMD-reduced, but `B` independent dot products
/// advancing in lockstep can). That requires batch-minor layout, hence
/// these cheap `O(rows·cols)` transposes around the `O(rows·cols·B)`
/// kernels.
#[inline]
pub fn transpose_into(src: &[f32], dst: &mut Vec<f32>, rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    dst.clear();
    dst.resize(rows * cols, 0.0);
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Batched affine map in batch-minor layout: `xt` is `cols × batch`
/// (transposed input), `yt` becomes `rows × batch`, `W` is
/// `rows × cols` row-major.
///
/// Per output element the terms accumulate in `k = 0, 1, …` order with
/// the bias first, grouped four-wide — so per-sample and batched calls
/// share the same term order but associate sums differently, agreeing
/// within float accumulation error (~1e-6 relative) rather than
/// bit-for-bit.
#[inline]
pub fn matmul_bias_tn(
    w: &[f32],
    b: &[f32],
    xt: &[f32],
    yt: &mut Vec<f32>,
    batch: usize,
    rows: usize,
    cols: usize,
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(b.len(), rows);
    debug_assert_eq!(xt.len(), batch * cols);
    yt.clear();
    yt.resize(batch * rows, 0.0);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let yr = &mut yt[r * batch..(r + 1) * batch];
        yr.fill(b[r]);
        // Block the reduction four-wide: one sweep of the output lanes
        // per four inputs quarters the L1 load/store traffic. Lanes stay
        // independent, so the loop still vectorizes across the batch.
        let mut k = 0;
        while k + 4 <= cols {
            let (w0, w1, w2, w3) = (row[k], row[k + 1], row[k + 2], row[k + 3]);
            let (x01, x23) = xt[k * batch..(k + 4) * batch].split_at(2 * batch);
            let (x0, x1) = x01.split_at(batch);
            let (x2, x3) = x23.split_at(batch);
            for ((((y, &a0), &a1), &a2), &a3) in yr.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
                *y += w0 * a0 + w1 * a1 + w2 * a2 + w3 * a3;
            }
            k += 4;
        }
        while k < cols {
            let wk = row[k];
            let xk = &xt[k * batch..(k + 1) * batch];
            for (y, &xv) in yr.iter_mut().zip(xk.iter()) {
                *y += wk * xv;
            }
            k += 1;
        }
    }
}

/// Batched input gradient in batch-minor layout: `dyt` is
/// `rows × batch`, `dxt` becomes `cols × batch`.
///
/// Accumulates over `r = 0, 1, …` for every lane — the same term order
/// as [`matvec_transpose`] — while streaming `W` once per minibatch.
#[inline]
pub fn matmul_dx_tn(
    w: &[f32],
    dyt: &[f32],
    dxt: &mut Vec<f32>,
    batch: usize,
    rows: usize,
    cols: usize,
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(dyt.len(), batch * rows);
    dxt.clear();
    dxt.resize(batch * cols, 0.0);
    // Block the reduction (rows) four-wide: one sweep of the input-grad
    // lanes per four output rows.
    let mut r = 0;
    while r + 4 <= rows {
        let (row0, row1, row2, row3) = (
            &w[r * cols..(r + 1) * cols],
            &w[(r + 1) * cols..(r + 2) * cols],
            &w[(r + 2) * cols..(r + 3) * cols],
            &w[(r + 3) * cols..(r + 4) * cols],
        );
        let (d0, d1, d2, d3) = (
            &dyt[r * batch..(r + 1) * batch],
            &dyt[(r + 1) * batch..(r + 2) * batch],
            &dyt[(r + 2) * batch..(r + 3) * batch],
            &dyt[(r + 3) * batch..(r + 4) * batch],
        );
        for k in 0..cols {
            let dst = &mut dxt[k * batch..(k + 1) * batch];
            let (w0, w1, w2, w3) = (row0[k], row1[k], row2[k], row3[k]);
            for ((((g, &a0), &a1), &a2), &a3) in dst.iter_mut().zip(d0).zip(d1).zip(d2).zip(d3) {
                *g += w0 * a0 + w1 * a1 + w2 * a2 + w3 * a3;
            }
        }
        r += 4;
    }
    while r < rows {
        let row = &w[r * cols..(r + 1) * cols];
        let dr = &dyt[r * batch..(r + 1) * batch];
        for (k, &wk) in row.iter().enumerate() {
            let dst = &mut dxt[k * batch..(k + 1) * batch];
            for (g, &dv) in dst.iter_mut().zip(dr.iter()) {
                *g += wk * dv;
            }
        }
        r += 1;
    }
}

/// Batched weight-gradient update `GW += dYᵀ·X`, `Gb += Σ_b dY_b`:
/// `dy` is `batch × rows`, `x` is `batch × cols`.
///
/// The batch reduction is blocked four-wide (one sweep of each weight
/// row per four samples), quartering the `GW` read/write traffic; the
/// sweep itself vectorizes over the columns.
#[inline]
pub fn matmul_dw_accumulate(
    gw: &mut [f32],
    gb: &mut [f32],
    dy: &[f32],
    x: &[f32],
    batch: usize,
    rows: usize,
    cols: usize,
) {
    debug_assert_eq!(gw.len(), rows * cols);
    debug_assert_eq!(gb.len(), rows);
    debug_assert_eq!(dy.len(), batch * rows);
    debug_assert_eq!(x.len(), batch * cols);
    for r in 0..rows {
        let row = &mut gw[r * cols..(r + 1) * cols];
        let mut bias_acc = gb[r];
        let mut bi = 0;
        while bi + 4 <= batch {
            let (d0, d1, d2, d3) = (
                dy[bi * rows + r],
                dy[(bi + 1) * rows + r],
                dy[(bi + 2) * rows + r],
                dy[(bi + 3) * rows + r],
            );
            bias_acc += d0 + d1 + d2 + d3;
            if d0 != 0.0 || d1 != 0.0 || d2 != 0.0 || d3 != 0.0 {
                let (x01, x23) = x[bi * cols..(bi + 4) * cols].split_at(2 * cols);
                let (x0, x1) = x01.split_at(cols);
                let (x2, x3) = x23.split_at(cols);
                for ((((g, &a0), &a1), &a2), &a3) in row.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3)
                {
                    *g += d0 * a0 + d1 * a1 + d2 * a2 + d3 * a3;
                }
            }
            bi += 4;
        }
        while bi < batch {
            let d = dy[bi * rows + r];
            bias_acc += d;
            if d != 0.0 {
                let xb = &x[bi * cols..(bi + 1) * cols];
                for (g, xi) in row.iter_mut().zip(xb.iter()) {
                    *g += d * xi;
                }
            }
            bi += 1;
        }
        gb[r] = bias_acc;
    }
}

/// In-place batched ReLU; `mask[i]` records whether lane `i` passed.
#[inline]
pub fn relu_forward(x: &mut [f32], mask: &mut [bool]) {
    debug_assert_eq!(x.len(), mask.len());
    for (v, m) in x.iter_mut().zip(mask.iter_mut()) {
        *m = *v > 0.0;
        if !*m {
            *v = 0.0;
        }
    }
}

/// In-place batched ReLU backward using the recorded mask.
#[inline]
pub fn relu_backward(dy: &mut [f32], mask: &[bool]) {
    debug_assert_eq!(dy.len(), mask.len());
    for (d, &m) in dy.iter_mut().zip(mask.iter()) {
        if !m {
            *d = 0.0;
        }
    }
}

/// Index of the maximum value among `allowed` entries (ties → lowest
/// index). Returns `None` when no entry is allowed.
///
/// Generic over the value type so that every masked "pick the best
/// action" loop in the workspace — `f32` Q-values here, `f64` predicted
/// time savings in the scheduling policies — goes through this one
/// implementation instead of hand-rolling the scan.
#[must_use]
pub fn masked_argmax<T: PartialOrd + Copy>(
    values: &[T],
    allowed: impl Fn(usize) -> bool,
) -> Option<usize> {
    let mut best: Option<(usize, T)> = None;
    for (i, &v) in values.iter().enumerate() {
        if !allowed(i) {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Uniform draw over the set bits of `mask` below `n`, consuming exactly
/// one `gen_range` from `rng`. Returns `None` for an empty mask.
///
/// This is the exploration half of the ε-greedy behaviour policy,
/// factored out so every masked uniform draw shares one implementation
/// (and therefore one RNG-consumption pattern — callers stay bit-for-bit
/// reproducible when they swap hand-rolled loops for this helper).
#[must_use]
pub fn masked_uniform<R: rand::Rng>(mask: u64, n: usize, rng: &mut R) -> Option<usize> {
    let count = (0..n).filter(|&a| mask & (1 << a) != 0).count();
    if count == 0 {
        return None;
    }
    let pick = rng.gen_range(0..count);
    (0..n).filter(|&a| mask & (1 << a) != 0).nth(pick)
}

/// Like [`masked_argmax`], but exact-value ties are broken uniformly at
/// random from `rng` (reservoir sampling over the tied set) instead of
/// by iteration order.
///
/// Lowest-index tie-breaking systematically biases exploration toward
/// low-numbered actions — with several rollout workers sharing one
/// freshly-initialised network, every worker would break the same ties
/// the same way. Training action selection uses this variant with the
/// per-episode RNG stream; deployment-time greedy rollouts keep the
/// deterministic [`masked_argmax`].
#[must_use]
pub fn masked_argmax_tiebreak<T: PartialOrd + Copy, R: rand::Rng>(
    values: &[T],
    allowed: impl Fn(usize) -> bool,
    rng: &mut R,
) -> Option<usize> {
    let mut best: Option<(usize, T)> = None;
    let mut ties = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if !allowed(i) {
            continue;
        }
        match best {
            Some((_, bv)) if v > bv => {
                best = Some((i, v));
                ties = 1;
            }
            Some((_, bv)) if v == bv => {
                ties += 1;
                if rng.gen_range(0u32..ties) == 0 {
                    best = Some((i, v));
                }
            }
            None => {
                best = Some((i, v));
                ties = 1;
            }
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

/// Row-wise masked argmax over a `batch × n` matrix: `out[b]` is the
/// argmax of row `b` among `masks[b]`'s set bits (ties → lowest index),
/// or `None` when the row's mask is empty.
pub fn masked_argmax_batch(
    values: &[f32],
    batch: usize,
    n: usize,
    masks: &[u64],
    out: &mut Vec<Option<usize>>,
) {
    debug_assert_eq!(values.len(), batch * n);
    debug_assert_eq!(masks.len(), batch);
    out.clear();
    out.extend(
        (0..batch)
            .map(|b| masked_argmax(&values[b * n..(b + 1) * n], |a| masks[b] & (1 << a) != 0)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matvec_computes_affine_map() {
        // W = [[1,2],[3,4],[5,6]], x = [1, -1], b = [10, 20, 30]
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [10.0, 20.0, 30.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        matvec(&w, &b, &x, &mut y, 3, 2);
        assert_eq!(y, [9.0, 19.0, 29.0]);
    }

    #[test]
    fn transpose_matvec_matches_manual() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3×2
        let dy = [1.0, 0.5, -1.0];
        let mut dx = [0.0; 2];
        matvec_transpose(&w, &dy, &mut dx, 3, 2);
        // col0: 1·1 + 3·0.5 + 5·(-1) = -2.5; col1: 2 + 2 - 6 = -2
        assert!((dx[0] + 2.5).abs() < 1e-6);
        assert!((dx[1] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn outer_accumulates() {
        let mut gw = [1.0; 6]; // 3×2 pre-filled
        outer_accumulate(&mut gw, &[1.0, 2.0, 0.0], &[10.0, -1.0], 3, 2);
        assert_eq!(gw, [11.0, 0.0, 21.0, -1.0, 1.0, 1.0]);
    }

    fn randn(n: usize, rng: &mut SmallRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = SmallRng::seed_from_u64(10);
        let src = randn(3 * 5, &mut rng);
        let mut t = Vec::new();
        transpose_into(&src, &mut t, 3, 5);
        // t[c][r] = src[r][c]: element (c = 0, r = 1) ← (r = 1, c = 0).
        assert_eq!(t[1], src[5], "t[c][r] = src[r][c]");
        let mut back = Vec::new();
        transpose_into(&t, &mut back, 5, 3);
        assert_eq!(back, src);
    }

    #[test]
    fn matmul_bias_tn_matches_per_sample_matvec() {
        let (batch, rows, cols) = (5, 7, 4);
        let mut rng = SmallRng::seed_from_u64(11);
        let (w, b, x) = (
            randn(rows * cols, &mut rng),
            randn(rows, &mut rng),
            randn(batch * cols, &mut rng),
        );
        let mut xt = Vec::new();
        transpose_into(&x, &mut xt, batch, cols);
        let mut yt = Vec::new();
        matmul_bias_tn(&w, &b, &xt, &mut yt, batch, rows, cols);
        let mut y = Vec::new();
        transpose_into(&yt, &mut y, rows, batch);
        for bi in 0..batch {
            let mut yb = vec![0.0f32; rows];
            matvec(&w, &b, &x[bi * cols..(bi + 1) * cols], &mut yb, rows, cols);
            for (a, e) in y[bi * rows..(bi + 1) * rows].iter().zip(yb.iter()) {
                assert!((a - e).abs() < 1e-5, "sample {bi}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn matmul_dx_tn_matches_per_sample_transpose() {
        let (batch, rows, cols) = (4, 6, 5);
        let mut rng = SmallRng::seed_from_u64(12);
        let w = randn(rows * cols, &mut rng);
        let dy = randn(batch * rows, &mut rng);
        let mut dyt = Vec::new();
        transpose_into(&dy, &mut dyt, batch, rows);
        let mut dxt = Vec::new();
        matmul_dx_tn(&w, &dyt, &mut dxt, batch, rows, cols);
        let mut dx = Vec::new();
        transpose_into(&dxt, &mut dx, cols, batch);
        for bi in 0..batch {
            let mut dxb = vec![0.0f32; cols];
            matvec_transpose(&w, &dy[bi * rows..(bi + 1) * rows], &mut dxb, rows, cols);
            for (a, e) in dx[bi * cols..(bi + 1) * cols].iter().zip(dxb.iter()) {
                assert!((a - e).abs() < 1e-6, "sample {bi}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn matmul_dw_matches_per_sample_outer() {
        let (batch, rows, cols) = (6, 3, 4);
        let mut rng = SmallRng::seed_from_u64(13);
        let dy = randn(batch * rows, &mut rng);
        let x = randn(batch * cols, &mut rng);
        let mut gw_batched = vec![0.5f32; rows * cols];
        let mut gb_batched = vec![0.25f32; rows];
        matmul_dw_accumulate(&mut gw_batched, &mut gb_batched, &dy, &x, batch, rows, cols);
        let mut gw_serial = vec![0.5f32; rows * cols];
        let mut gb_serial = vec![0.25f32; rows];
        for bi in 0..batch {
            let dyb = &dy[bi * rows..(bi + 1) * rows];
            outer_accumulate(
                &mut gw_serial,
                dyb,
                &x[bi * cols..(bi + 1) * cols],
                rows,
                cols,
            );
            for (g, &d) in gb_serial.iter_mut().zip(dyb.iter()) {
                *g += d;
            }
        }
        for (a, e) in gw_batched.iter().zip(gw_serial.iter()) {
            assert!((a - e).abs() < 1e-6);
        }
        for (a, e) in gb_batched.iter().zip(gb_serial.iter()) {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn relu_kernels_mask_and_gate() {
        let mut x = vec![1.0, -2.0, 0.0, 3.0];
        let mut mask = vec![false; 4];
        relu_forward(&mut x, &mut mask);
        assert_eq!(x, vec![1.0, 0.0, 0.0, 3.0]);
        assert_eq!(mask, vec![true, false, false, true]);
        let mut dy = vec![10.0; 4];
        relu_backward(&mut dy, &mask);
        assert_eq!(dy, vec![10.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn masked_argmax_respects_mask() {
        let v = [1.0, 5.0, 3.0];
        assert_eq!(masked_argmax(&v, |_| true), Some(1));
        assert_eq!(masked_argmax(&v, |i| i != 1), Some(2));
        assert_eq!(masked_argmax(&v, |_| false), None);
    }

    #[test]
    fn masked_argmax_tie_breaks_low() {
        let v = [2.0, 2.0, 1.0];
        assert_eq!(masked_argmax(&v, |_| true), Some(0));
    }

    #[test]
    fn masked_argmax_batch_per_row_masks() {
        let v = [1.0, 5.0, 3.0, 9.0, 2.0, 0.0];
        let masks = [0b111u64, 0b110, 0b000];
        let mut out = Vec::new();
        masked_argmax_batch(&v[..6], 2, 3, &masks[..2], &mut out);
        // Row 0: free argmax → 5.0 at index 1. Row 1 masks out index 0
        // (the 9.0), leaving 2.0 at index 1.
        assert_eq!(out, vec![Some(1), Some(1)]);
    }

    #[test]
    fn tiebreak_argmax_is_uniform_over_ties() {
        let v = [4.0, 4.0, 1.0, 4.0];
        let mut rng = SmallRng::seed_from_u64(77);
        let mut counts = [0usize; 4];
        for _ in 0..6000 {
            let i = masked_argmax_tiebreak(&v, |_| true, &mut rng).unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts[2], 0, "non-maximal index must never win");
        for &i in &[0usize, 1, 3] {
            assert!(
                (1700..2300).contains(&counts[i]),
                "tie index {i} won {} of 6000",
                counts[i]
            );
        }
    }

    #[test]
    fn tiebreak_argmax_respects_mask_and_empty() {
        let v = [2.0, 2.0, 5.0];
        let mut rng = SmallRng::seed_from_u64(1);
        let picked = masked_argmax_tiebreak(&v, |i| i < 2, &mut rng);
        assert!(picked == Some(0) || picked == Some(1), "picked {picked:?}");
        assert_eq!(masked_argmax_tiebreak(&v, |_| false, &mut rng), None);
    }

    #[test]
    fn masked_argmax_works_on_f64_scores() {
        // The policies score actions in f64 (predicted seconds saved);
        // the generic argmax must behave identically there.
        let v = [1.25f64, f64::NEG_INFINITY, 7.5, 7.5];
        assert_eq!(masked_argmax(&v, |_| true), Some(2));
        assert_eq!(masked_argmax(&v, |i| i != 2), Some(3));
        assert_eq!(masked_argmax(&v, |i| i == 1), Some(1));
    }

    #[test]
    fn masked_uniform_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(9);
        // All-invalid mask: no draw possible.
        assert_eq!(masked_uniform(0, 8, &mut rng), None);
        // Bits at or above `n` do not count as valid.
        assert_eq!(masked_uniform(0b1_0000, 4, &mut rng), None);
        // Single-valid mask: always that action, for any RNG state.
        for _ in 0..20 {
            assert_eq!(masked_uniform(0b100, 8, &mut rng), Some(2));
        }
    }

    #[test]
    fn masked_uniform_covers_all_valid_bits_uniformly() {
        let mut rng = SmallRng::seed_from_u64(123);
        let mask = 0b1011u64; // actions 0, 1, 3
        let mut counts = [0usize; 4];
        for _ in 0..6000 {
            counts[masked_uniform(mask, 4, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[2], 0, "invalid action must never be drawn");
        for &i in &[0usize, 1, 3] {
            assert!(
                (1700..2300).contains(&counts[i]),
                "action {i} drawn {} of 6000",
                counts[i]
            );
        }
    }

    #[test]
    fn masked_uniform_matches_the_legacy_index_list_draw() {
        // The pre-refactor exploration branch collected the valid
        // indices into a Vec and indexed it with one `gen_range`; the
        // helper must consume the RNG stream identically so ε-greedy
        // rollouts stay bit-for-bit reproducible across the refactor.
        for seed in 0..20u64 {
            let mask = 0b1_1010_0110u64;
            let n = 9;
            let mut legacy_rng = SmallRng::seed_from_u64(seed);
            let valid: Vec<usize> = (0..n).filter(|&a| mask & (1 << a) != 0).collect();
            let legacy = valid[legacy_rng.gen_range(0..valid.len())];
            let mut rng = SmallRng::seed_from_u64(seed);
            assert_eq!(masked_uniform(mask, n, &mut rng), Some(legacy));
        }
    }
}
