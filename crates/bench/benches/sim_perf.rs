//! Criterion benchmarks for the GPU-simulator substrate: the rate model,
//! the discrete-event engine, partition compilation, and the notation
//! parser. These are the inner loops of every exhaustive baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hrp_gpusim::engine::{simulate_corun, EngineConfig};
use hrp_gpusim::notation::{format_scheme, parse_scheme};
use hrp_gpusim::perf::corun_rates;
use hrp_gpusim::{AppModel, GpuArch, PartitionScheme};

fn apps() -> Vec<AppModel> {
    vec![
        AppModel::builder("ci")
            .parallel_fraction(0.96)
            .compute_demand(0.9)
            .mem_demand(0.3)
            .solo_time(45.0)
            .build(),
        AppModel::builder("mi")
            .parallel_fraction(0.94)
            .compute_demand(0.4)
            .mem_demand(0.85)
            .interference_sensitivity(0.25)
            .solo_time(55.0)
            .build(),
        AppModel::builder("us1")
            .parallel_fraction(0.2)
            .compute_demand(0.4)
            .mem_demand(0.1)
            .solo_time(16.0)
            .build(),
        AppModel::builder("us2")
            .parallel_fraction(0.22)
            .compute_demand(0.4)
            .mem_demand(0.1)
            .solo_time(14.0)
            .build(),
    ]
}

fn bench_rates(c: &mut Criterion) {
    let arch = GpuArch::a100();
    let apps = apps();
    let part = PartitionScheme::hierarchical_3_4(vec![0.5, 0.5], vec![0.3, 0.7])
        .compile(&arch)
        .unwrap();
    let occ: Vec<(&AppModel, usize)> = apps.iter().enumerate().map(|(i, a)| (a, i)).collect();
    c.bench_function("corun_rates_4way_hierarchical", |b| {
        b.iter(|| black_box(corun_rates(black_box(&occ), &part)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let arch = GpuArch::a100();
    let apps = apps();
    let refs: Vec<&AppModel> = apps.iter().collect();
    let part = PartitionScheme::hierarchical_3_4(vec![0.5, 0.5], vec![0.3, 0.7])
        .compile(&arch)
        .unwrap();
    let cfg = EngineConfig::default();
    c.bench_function("simulate_corun_4way", |b| {
        b.iter(|| black_box(simulate_corun(black_box(&refs), &[0, 1, 2, 3], &part, &cfg)))
    });
}

fn bench_compile(c: &mut Criterion) {
    let arch = GpuArch::a100();
    let scheme = PartitionScheme::hierarchical_3_4(vec![0.5, 0.5], vec![0.3, 0.7]);
    c.bench_function("partition_compile_hierarchical", |b| {
        b.iter(|| black_box(scheme.compile(&arch).unwrap()))
    });
}

fn bench_notation(c: &mut Criterion) {
    let scheme = PartitionScheme::hierarchical_3_4(vec![0.5, 0.5], vec![0.3, 0.7]);
    let text = format_scheme(&scheme);
    c.bench_function("notation_parse", |b| {
        b.iter(|| black_box(parse_scheme(black_box(&text)).unwrap()))
    });
    c.bench_function("notation_format", |b| {
        b.iter(|| black_box(format_scheme(black_box(&scheme))))
    });
}

criterion_group!(
    benches,
    bench_rates,
    bench_engine,
    bench_compile,
    bench_notation
);
criterion_main!(benches);
