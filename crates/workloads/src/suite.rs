//! The 27-program benchmark suite of the paper's Table IV.
//!
//! Each entry is a synthetic stand-in for the real program, parameterized
//! (parallel fraction, compute/memory demand, interference sensitivity,
//! solo runtime, counter ground truth) so that the classification
//! procedure of [`crate::class`] reproduces Table IV exactly. Programs
//! marked *unseen* (starred in the paper) are excluded from offline
//! training and used to test generalization.

#[cfg(test)]
use crate::class::classify;
use crate::class::Class;
use hrp_gpusim::arch::GpuArch;
use hrp_gpusim::AppModel;
use std::collections::HashMap;

/// One benchmark program: the synthetic model plus suite metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The application model handed to the simulator.
    pub app: AppModel,
    /// Class per Table IV (validated against [`crate::classify`] in tests).
    pub class: Class,
    /// Starred in Table IV: excluded from offline training.
    pub unseen: bool,
}

/// The full benchmark suite.
#[derive(Debug, Clone)]
pub struct Suite {
    benchmarks: Vec<Benchmark>,
    by_name: HashMap<String, usize>,
    arch: GpuArch,
}

/// Raw parameter row: (name, class, unseen, parallel_fraction,
/// compute_demand, mem_demand, interference_sensitivity, solo_time,
/// sm_pct, mem_pct, working_set_mib, grid, regs, waves, warps).
type Row = (
    &'static str,
    Class,
    bool,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    f64,
    u64,
    u32,
    f64,
    f64,
);

/// Calibrated parameters for the 27 programs. The values are synthetic
/// but shaped after the real programs' published characteristics
/// (e.g. `stream` saturates DRAM; Quicksilver's tracking loop is known to
/// scale poorly on GPUs; `lavaMD` is compute-dense n-body).
const ROWS: [Row; 27] = [
    // --- Compute Intensive (8) ---
    (
        "lavaMD",
        Class::Ci,
        false,
        0.97,
        0.92,
        0.18,
        0.05,
        38.0,
        88.0,
        22.0,
        1200.0,
        13000,
        72,
        7.2,
        52.0,
    ),
    (
        "huffman",
        Class::Ci,
        true,
        0.90,
        0.78,
        0.30,
        0.08,
        12.0,
        72.0,
        35.0,
        300.0,
        4096,
        40,
        3.1,
        36.0,
    ),
    (
        "hotspot3D",
        Class::Ci,
        false,
        0.95,
        0.85,
        0.42,
        0.10,
        25.0,
        80.0,
        48.0,
        2048.0,
        8192,
        56,
        5.5,
        44.0,
    ),
    (
        "hotspot",
        Class::Ci,
        true,
        0.93,
        0.82,
        0.38,
        0.09,
        15.0,
        76.0,
        44.0,
        1024.0,
        7000,
        50,
        4.8,
        42.0,
    ),
    (
        "heartwall",
        Class::Ci,
        true,
        0.94,
        0.88,
        0.25,
        0.06,
        30.0,
        84.0,
        30.0,
        700.0,
        2600,
        63,
        2.4,
        38.0,
    ),
    (
        "bt_solver_A",
        Class::Ci,
        false,
        0.96,
        0.90,
        0.35,
        0.07,
        45.0,
        86.0,
        40.0,
        3000.0,
        16000,
        80,
        8.1,
        50.0,
    ),
    (
        "bt_solver_B",
        Class::Ci,
        false,
        0.96,
        0.88,
        0.33,
        0.07,
        60.0,
        85.0,
        38.0,
        4200.0,
        20000,
        80,
        9.0,
        51.0,
    ),
    (
        "bt_solver_C",
        Class::Ci,
        false,
        0.97,
        0.91,
        0.30,
        0.06,
        75.0,
        89.0,
        33.0,
        5600.0,
        25000,
        82,
        9.8,
        53.0,
    ),
    // --- Memory Intensive (10) ---
    (
        "lud_A",
        Class::Mi,
        false,
        0.92,
        0.40,
        0.75,
        0.25,
        20.0,
        45.0,
        72.0,
        2048.0,
        6000,
        34,
        4.0,
        40.0,
    ),
    (
        "lud_B",
        Class::Mi,
        false,
        0.92,
        0.38,
        0.80,
        0.28,
        35.0,
        42.0,
        78.0,
        4096.0,
        9000,
        34,
        5.2,
        42.0,
    ),
    (
        "lud_C",
        Class::Mi,
        true,
        0.93,
        0.36,
        0.85,
        0.30,
        50.0,
        40.0,
        82.0,
        8192.0,
        14000,
        34,
        6.4,
        44.0,
    ),
    (
        "sp_solver_A",
        Class::Mi,
        false,
        0.94,
        0.45,
        0.78,
        0.22,
        40.0,
        50.0,
        75.0,
        5000.0,
        12000,
        44,
        5.8,
        46.0,
    ),
    (
        "sp_solver_B",
        Class::Mi,
        false,
        0.94,
        0.42,
        0.82,
        0.24,
        55.0,
        48.0,
        80.0,
        7000.0,
        15000,
        44,
        6.6,
        47.0,
    ),
    (
        "sp_solver_C",
        Class::Mi,
        false,
        0.95,
        0.40,
        0.88,
        0.26,
        70.0,
        46.0,
        85.0,
        9000.0,
        18000,
        44,
        7.4,
        48.0,
    ),
    (
        "randomaccess",
        Class::Mi,
        false,
        0.90,
        0.25,
        0.95,
        0.45,
        18.0,
        28.0,
        92.0,
        16384.0,
        32768,
        24,
        3.0,
        30.0,
    ),
    (
        "cfd",
        Class::Mi,
        true,
        0.93,
        0.48,
        0.85,
        0.30,
        28.0,
        52.0,
        80.0,
        3000.0,
        10000,
        52,
        5.0,
        45.0,
    ),
    (
        "gaussian",
        Class::Mi,
        true,
        0.91,
        0.35,
        0.72,
        0.20,
        14.0,
        38.0,
        70.0,
        1500.0,
        5000,
        30,
        3.5,
        38.0,
    ),
    (
        "stream",
        Class::Mi,
        false,
        0.97,
        0.30,
        1.00,
        0.35,
        10.0,
        32.0,
        95.0,
        12288.0,
        24576,
        26,
        4.4,
        34.0,
    ),
    // --- UnScalable (9) ---
    (
        "kmeans",
        Class::Us,
        false,
        0.20,
        0.42,
        0.11,
        0.06,
        16.0,
        35.0,
        30.0,
        400.0,
        1200,
        36,
        0.8,
        24.0,
    ),
    (
        "dwt2d",
        Class::Us,
        false,
        0.25,
        0.37,
        0.12,
        0.08,
        12.0,
        33.0,
        28.0,
        500.0,
        900,
        38,
        0.6,
        22.0,
    ),
    (
        "needle",
        Class::Us,
        true,
        0.30,
        0.33,
        0.09,
        0.05,
        22.0,
        30.0,
        26.0,
        600.0,
        512,
        42,
        0.4,
        18.0,
    ),
    (
        "pathfinder",
        Class::Us,
        false,
        0.22,
        0.40,
        0.10,
        0.05,
        14.0,
        36.0,
        27.0,
        350.0,
        1500,
        32,
        0.9,
        26.0,
    ),
    (
        "backprop",
        Class::Us,
        true,
        0.28,
        0.34,
        0.13,
        0.09,
        9.0,
        31.0,
        33.0,
        450.0,
        2048,
        28,
        1.0,
        28.0,
    ),
    (
        "qs_Coral_P1",
        Class::Us,
        false,
        0.18,
        0.45,
        0.08,
        0.04,
        65.0,
        40.0,
        24.0,
        1800.0,
        3000,
        58,
        1.4,
        30.0,
    ),
    (
        "qs_Coral_P2",
        Class::Us,
        false,
        0.20,
        0.44,
        0.09,
        0.04,
        80.0,
        39.0,
        25.0,
        2400.0,
        3600,
        58,
        1.6,
        31.0,
    ),
    (
        "qs_NoFission",
        Class::Us,
        true,
        0.16,
        0.46,
        0.07,
        0.04,
        55.0,
        41.0,
        22.0,
        1600.0,
        2800,
        58,
        1.3,
        29.0,
    ),
    (
        "qs_NoCollisions",
        Class::Us,
        false,
        0.19,
        0.43,
        0.08,
        0.04,
        48.0,
        38.0,
        23.0,
        1500.0,
        2600,
        58,
        1.2,
        28.0,
    ),
];

impl Suite {
    /// Build the paper's suite for the given architecture.
    #[must_use]
    pub fn paper_suite(arch: &GpuArch) -> Self {
        let mut benchmarks = Vec::with_capacity(ROWS.len());
        let mut by_name = HashMap::with_capacity(ROWS.len());
        for (name, class, unseen, f, u, b, sigma, t, sm, mem, ws, grid, regs, waves, warps) in ROWS
        {
            // Co-residency sensitivity by class: CI kernels mostly live in
            // registers/L1 (mild), MI kernels fight over LLC/DRAM queues,
            // US kernels are latency-bound and suffer most from sharing.
            let crowd = match class {
                Class::Ci => 0.15,
                Class::Mi => 0.25,
                Class::Us => 0.30,
            };
            let app = AppModel::builder(name)
                .parallel_fraction(f)
                .compute_demand(u)
                .mem_demand(b)
                // Row sigmas are scaled up: DRAM/LLC interference on real
                // Ampere parts is fierce (the paper's Fig. 4 gains demand
                // it), and it is the mechanism MPS cannot mitigate.
                .interference_sensitivity(sigma * 1.5)
                .crowd_sensitivity(crowd)
                .solo_time(t)
                .utilisation(sm, mem)
                .working_set_mib(ws)
                .occupancy(grid, regs, waves, warps)
                .build();
            by_name.insert(name.to_owned(), benchmarks.len());
            benchmarks.push(Benchmark { app, class, unseen });
        }
        Self {
            benchmarks,
            by_name,
            arch: arch.clone(),
        }
    }

    /// The architecture this suite was built for.
    #[must_use]
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// All benchmarks, in Table IV order.
    #[must_use]
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Number of benchmarks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the suite is empty (it never is for the paper suite).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Look a benchmark up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Benchmark> {
        self.by_name.get(name).map(|&i| &self.benchmarks[i])
    }

    /// Index of a benchmark by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Benchmark by index.
    #[must_use]
    pub fn by_index(&self, idx: usize) -> &Benchmark {
        &self.benchmarks[idx]
    }

    /// Indices of the training ("seen") programs.
    #[must_use]
    pub fn seen_indices(&self) -> Vec<usize> {
        (0..self.benchmarks.len())
            .filter(|&i| !self.benchmarks[i].unseen)
            .collect()
    }

    /// A copy of the suite with every application's interference
    /// sensitivity multiplied by `factor`. `factor = 0` produces an
    /// interference-free counterfactual GPU — the ablation that isolates
    /// the mechanism behind the paper's Fig. 4 (MIG's advantage should
    /// vanish).
    #[must_use]
    pub fn with_interference_scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        for b in &mut out.benchmarks {
            b.app.interference_sensitivity *= factor.max(0.0);
        }
        out
    }

    /// Indices of programs in a class (optionally restricted to seen).
    #[must_use]
    pub fn class_indices(&self, class: Class, seen_only: bool) -> Vec<usize> {
        (0..self.benchmarks.len())
            .filter(|&i| {
                self.benchmarks[i].class == class && (!seen_only || !self.benchmarks[i].unseen)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Suite {
        Suite::paper_suite(&GpuArch::a100())
    }

    #[test]
    fn suite_has_27_programs() {
        assert_eq!(suite().len(), 27);
        assert!(!suite().is_empty());
    }

    #[test]
    fn class_counts_match_table_iv() {
        let s = suite();
        assert_eq!(s.class_indices(Class::Ci, false).len(), 8);
        assert_eq!(s.class_indices(Class::Mi, false).len(), 10);
        assert_eq!(s.class_indices(Class::Us, false).len(), 9);
    }

    #[test]
    fn nine_programs_are_unseen() {
        let s = suite();
        let unseen: Vec<&str> = s
            .benchmarks()
            .iter()
            .filter(|b| b.unseen)
            .map(|b| b.app.name.as_str())
            .collect();
        assert_eq!(unseen.len(), 9, "{unseen:?}");
        assert_eq!(s.seen_indices().len(), 18);
        for name in [
            "huffman",
            "hotspot",
            "heartwall",
            "lud_C",
            "cfd",
            "gaussian",
            "needle",
            "backprop",
            "qs_NoFission",
        ] {
            assert!(unseen.contains(&name), "{name} must be starred");
        }
    }

    #[test]
    fn classification_procedure_reproduces_table_iv() {
        // The central calibration test: the paper's classification run on
        // our synthetic models yields exactly Table IV.
        let s = suite();
        for b in s.benchmarks() {
            let got = classify(&b.app, s.arch());
            assert_eq!(
                got, b.class,
                "{} classified {got} but Table IV says {}",
                b.app.name, b.class
            );
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let s = suite();
        for (i, b) in s.benchmarks().iter().enumerate() {
            assert_eq!(s.index_of(&b.app.name), Some(i));
            assert_eq!(s.get(&b.app.name).unwrap().app.name, b.app.name);
        }
        assert!(s.get("not_a_benchmark").is_none());
    }

    #[test]
    fn seen_set_contains_all_classes() {
        let s = suite();
        for class in Class::ALL {
            assert!(
                !s.class_indices(class, true).is_empty(),
                "training set must contain {class}"
            );
        }
    }

    #[test]
    fn solo_times_are_positive_and_varied() {
        let s = suite();
        let times: Vec<f64> = s.benchmarks().iter().map(|b| b.app.solo_time).collect();
        assert!(times.iter().all(|&t| t > 0.0));
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 3.0, "durations should span a wide range");
    }
}
