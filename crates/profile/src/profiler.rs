//! Solo-run profiling of applications on the simulated GPU.

use hrp_gpusim::arch::GpuArch;
use hrp_gpusim::counters::CounterSet;
use hrp_gpusim::perf::solo_rate;
use hrp_gpusim::rng::SplitMix64;
use hrp_gpusim::AppModel;
use serde::{Deserialize, Serialize};

/// A stored job profile: the measured counters plus the measured solo
/// runtime (seconds). Everything downstream (state encoding, rewards,
/// co-run prediction by baselines) uses these *measured* values, never
/// the model's ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Table III counters from the profiling run.
    pub counters: CounterSet,
    /// Measured solo execution time in seconds (`duration` counter).
    pub solo_time: f64,
    /// Measured execution time of the 1-GPC private-memory run — the
    /// extra run the paper's classification procedure performs (§V-A2).
    pub one_gpc_time: f64,
}

impl JobProfile {
    /// `Compute (SM) [%]` from the profile.
    #[must_use]
    pub fn compute_pct(&self) -> f64 {
        self.counters.compute_sm_pct
    }

    /// Measured 1-GPC degradation, `1 − solo/one_gpc` (the paper's US
    /// classification input).
    #[must_use]
    pub fn one_gpc_degradation(&self) -> f64 {
        (1.0 - self.solo_time / self.one_gpc_time.max(1e-9)).max(0.0)
    }

    /// `Memory [%]` from the profile.
    #[must_use]
    pub fn memory_pct(&self) -> f64 {
        self.counters.memory_pct
    }
}

/// The profiling harness: Nsight Compute's stand-in.
#[derive(Debug, Clone)]
pub struct Profiler {
    arch: GpuArch,
    /// Relative measurement noise (e.g. 0.03 = ±3%).
    noise_level: f64,
    seed: u64,
}

impl Profiler {
    /// Create a profiler for an architecture.
    #[must_use]
    pub fn new(arch: GpuArch, noise_level: f64, seed: u64) -> Self {
        Self {
            arch,
            noise_level,
            seed,
        }
    }

    /// A noise-free profiler (useful in tests and ablations).
    #[must_use]
    pub fn exact(arch: GpuArch) -> Self {
        Self::new(arch, 0.0, 0)
    }

    /// Profile one application: one simulated exclusive solo run plus
    /// the 1-GPC private run used by the classification procedure.
    #[must_use]
    pub fn profile(&self, app: &AppModel) -> JobProfile {
        let counters = CounterSet::collect(app, &self.arch, self.noise_level, self.seed);
        let solo_time = counters.duration_ms / 1e3;
        let one_gpc_rate = solo_rate(
            app,
            self.arch.gpc_fraction(),
            self.arch.mem_slice_fraction(),
        );
        let mut rng = SplitMix64::from_key(self.seed ^ 0x16c, &app.name);
        let one_gpc_time =
            (app.solo_time / one_gpc_rate.max(1e-6)) * rng.noise_factor(self.noise_level);
        JobProfile {
            solo_time,
            one_gpc_time,
            counters,
        }
    }

    /// The architecture profiled against.
    #[must_use]
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> AppModel {
        AppModel::builder("stream")
            .parallel_fraction(0.97)
            .compute_demand(0.3)
            .mem_demand(1.0)
            .solo_time(10.0)
            .utilisation(32.0, 95.0)
            .build()
    }

    #[test]
    fn exact_profile_matches_ground_truth() {
        let p = Profiler::exact(GpuArch::a100());
        let prof = p.profile(&app());
        assert!((prof.solo_time - 10.0).abs() < 1e-9);
        assert!((prof.compute_pct() - 32.0).abs() < 1e-9);
        assert!((prof.memory_pct() - 95.0).abs() < 1e-9);
        // stream at 1 GPC private is bandwidth-crushed: big degradation.
        assert!(prof.one_gpc_degradation() > 0.5);
    }

    #[test]
    fn noisy_profile_is_deterministic_and_bounded() {
        let p = Profiler::new(GpuArch::a100(), 0.05, 99);
        let a = p.profile(&app());
        let b = p.profile(&app());
        assert_eq!(a, b, "same seed → same measurement");
        assert!((a.solo_time - 10.0).abs() / 10.0 <= 0.05 + 1e-9);
    }

    #[test]
    fn different_seeds_measure_differently() {
        let a = Profiler::new(GpuArch::a100(), 0.05, 1).profile(&app());
        let b = Profiler::new(GpuArch::a100(), 0.05, 2).profile(&app());
        assert_ne!(a, b);
    }
}
