//! The two-part reward of the paper's Table VI.
//!
//! * The **intermediate reward** `r_i` scores one job's resource
//!   allocation *before launching*, from its profile:
//!
//!   ```text
//!   r_i = (SmAllocRatio · ComputeRatio + MemoryAllocRatio · MemoryRatio)
//!         · DurationRatio²
//!   ```
//!
//!   where `SmAllocRatio`/`MemoryAllocRatio` are the hardware fractions
//!   granted to the job and `ComputeRatio`/`MemoryRatio`/`DurationRatio`
//!   are the job's profile counters relative to the window mean. The
//!   squared duration ratio prioritises long jobs — misallocating a long
//!   job costs more.
//!
//! * The **final reward** `r_f` is the measured throughput gain over time
//!   sharing, available only after the group completes:
//!
//!   ```text
//!   r_f = (SoloRunTime / CoRunTime − 1) × 100
//!   ```

use hrp_profile::JobProfile;

/// Window-mean statistics the ratios are computed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Mean `Compute (SM) [%]` across the window.
    pub mean_compute_pct: f64,
    /// Mean `Memory [%]` across the window.
    pub mean_memory_pct: f64,
    /// Mean solo runtime (seconds) across the window.
    pub mean_solo_time: f64,
}

impl WindowStats {
    /// Compute window statistics from the profiles of all window jobs.
    #[must_use]
    pub fn from_profiles<'a>(profiles: impl IntoIterator<Item = &'a JobProfile>) -> Self {
        let mut n = 0usize;
        let (mut sm, mut mem, mut dur) = (0.0, 0.0, 0.0);
        for p in profiles {
            n += 1;
            sm += p.compute_pct();
            mem += p.memory_pct();
            dur += p.solo_time;
        }
        assert!(n > 0, "window statistics need at least one profile");
        let n = n as f64;
        Self {
            mean_compute_pct: (sm / n).max(1e-9),
            mean_memory_pct: (mem / n).max(1e-9),
            mean_solo_time: (dur / n).max(1e-9),
        }
    }
}

/// The intermediate reward `r_i` for placing `profile` on a slot granting
/// `sm_alloc` of the GPU's SMs within a memory domain granting
/// `mem_alloc` of its bandwidth.
#[must_use]
pub fn intermediate_reward(
    profile: &JobProfile,
    stats: &WindowStats,
    sm_alloc: f64,
    mem_alloc: f64,
) -> f64 {
    let compute_ratio = profile.compute_pct() / stats.mean_compute_pct;
    let memory_ratio = profile.memory_pct() / stats.mean_memory_pct;
    let duration_ratio = profile.solo_time / stats.mean_solo_time;
    (sm_alloc * compute_ratio + mem_alloc * memory_ratio) * duration_ratio * duration_ratio
}

/// The final reward `r_f` from measured solo and co-run times.
#[must_use]
pub fn final_reward(solo_run_time: f64, co_run_time: f64) -> f64 {
    assert!(co_run_time > 0.0, "co-run time must be positive");
    (solo_run_time / co_run_time - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_gpusim::arch::GpuArch;
    use hrp_gpusim::AppModel;
    use hrp_profile::Profiler;

    fn profile(sm: f64, mem: f64, t: f64) -> JobProfile {
        let app = AppModel::builder("x")
            .utilisation(sm, mem)
            .solo_time(t)
            .build();
        Profiler::exact(GpuArch::a100()).profile(&app)
    }

    #[test]
    fn window_stats_average() {
        let a = profile(80.0, 20.0, 10.0);
        let b = profile(40.0, 60.0, 30.0);
        let s = WindowStats::from_profiles([&a, &b]);
        assert!((s.mean_compute_pct - 60.0).abs() < 1e-9);
        assert!((s.mean_memory_pct - 40.0).abs() < 1e-9);
        assert!((s.mean_solo_time - 20.0).abs() < 1e-9);
    }

    #[test]
    fn compute_hungry_job_prefers_sm_allocation() {
        // For a compute-heavy job, granting SMs must raise r_i faster
        // than granting bandwidth.
        let job = profile(90.0, 10.0, 20.0);
        let stats = WindowStats {
            mean_compute_pct: 50.0,
            mean_memory_pct: 50.0,
            mean_solo_time: 20.0,
        };
        let more_sm = intermediate_reward(&job, &stats, 0.8, 0.2);
        let more_mem = intermediate_reward(&job, &stats, 0.2, 0.8);
        assert!(more_sm > more_mem);
    }

    #[test]
    fn memory_hungry_job_prefers_bandwidth() {
        let job = profile(15.0, 90.0, 20.0);
        let stats = WindowStats {
            mean_compute_pct: 50.0,
            mean_memory_pct: 50.0,
            mean_solo_time: 20.0,
        };
        let more_sm = intermediate_reward(&job, &stats, 0.8, 0.2);
        let more_mem = intermediate_reward(&job, &stats, 0.2, 0.8);
        assert!(more_mem > more_sm);
    }

    #[test]
    fn duration_ratio_is_squared() {
        let stats = WindowStats {
            mean_compute_pct: 50.0,
            mean_memory_pct: 50.0,
            mean_solo_time: 10.0,
        };
        let short = profile(50.0, 50.0, 10.0);
        let long = profile(50.0, 50.0, 30.0);
        let r_short = intermediate_reward(&short, &stats, 0.5, 0.5);
        let r_long = intermediate_reward(&long, &stats, 0.5, 0.5);
        // Same utilisation: ratio of rewards = (30/10)² = 9.
        assert!((r_long / r_short - 9.0).abs() < 1e-6);
    }

    #[test]
    fn final_reward_matches_definition() {
        // Throughput ×1.5 → +50.
        assert!((final_reward(30.0, 20.0) - 50.0).abs() < 1e-9);
        // Co-run as slow as time sharing → 0.
        assert!(final_reward(20.0, 20.0).abs() < 1e-9);
        // Worse than time sharing → negative.
        assert!(final_reward(20.0, 25.0) < 0.0);
    }
}
