//! Event-driven cluster simulation scaffolding.
//!
//! The cluster is a pool of identical GPUs. Dispatchers (FCFS, the
//! co-scheduling extension) decide what to start whenever a GPU frees or
//! a job arrives; the simulator advances time between those events and
//! collects the report.

use crate::job::ClusterJob;
use hrp_workloads::Suite;

/// A unit of work the dispatcher starts on one or more GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Job ids covered by this placement (one for exclusive runs, many
    /// for a co-scheduled window).
    pub job_ids: Vec<usize>,
    /// Number of GPUs occupied.
    pub gpus: usize,
    /// Wall time the placement occupies its GPUs.
    pub duration: f64,
}

/// Cluster-run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Time the last job finished.
    pub makespan: f64,
    /// Mean job wait time (start − arrival).
    pub avg_wait: f64,
    /// Mean GPU busy fraction over the makespan.
    pub utilization: f64,
    /// Number of placements executed.
    pub placements: usize,
}

/// A dispatcher decides what to run next given the waiting jobs and the
/// number of currently free GPUs.
pub trait Dispatcher {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Choose the next placement, or `None` to stay idle until the next
    /// event. `waiting` is sorted by arrival; every returned job id must
    /// come from it. `now` is the simulation clock.
    fn next_placement(
        &mut self,
        suite: &Suite,
        waiting: &[ClusterJob],
        free_gpus: usize,
        now: f64,
    ) -> Option<Placement>;
}

/// The simulator: runs a job trace through a dispatcher on `n_gpus`.
#[derive(Debug)]
pub struct ClusterSim {
    n_gpus: usize,
}

impl ClusterSim {
    /// A cluster with `n_gpus` identical GPUs.
    #[must_use]
    pub fn new(n_gpus: usize) -> Self {
        assert!(n_gpus >= 1);
        Self { n_gpus }
    }

    /// Run the trace to completion.
    ///
    /// # Panics
    /// Panics if the dispatcher returns inconsistent placements (unknown
    /// job ids or more GPUs than free).
    pub fn run(
        &self,
        suite: &Suite,
        mut jobs: Vec<ClusterJob>,
        dispatcher: &mut dyn Dispatcher,
    ) -> ClusterReport {
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let total_jobs = jobs.len();
        let mut clock = 0.0f64;
        let mut free = self.n_gpus;
        let mut waiting: Vec<ClusterJob> = Vec::new();
        let mut arrivals = jobs.into_iter().peekable();
        // (finish_time, gpus) of running placements.
        let mut running: Vec<(f64, usize)> = Vec::new();
        let mut busy_gpu_seconds = 0.0f64;
        let mut wait_sum = 0.0f64;
        let mut placements = 0usize;

        loop {
            // Absorb arrivals up to `clock`.
            while let Some(j) = arrivals.peek() {
                if j.arrival <= clock + 1e-12 {
                    waiting.push(arrivals.next().expect("peeked"));
                } else {
                    break;
                }
            }
            // Start as much as the dispatcher wants.
            while let Some(p) = dispatcher.next_placement(suite, &waiting, free, clock) {
                assert!(p.gpus <= free, "dispatcher over-allocated");
                assert!(!p.job_ids.is_empty());
                for id in &p.job_ids {
                    let pos = waiting
                        .iter()
                        .position(|j| j.id == *id)
                        .expect("placement references waiting job");
                    let job = waiting.remove(pos);
                    wait_sum += clock - job.arrival;
                }
                free -= p.gpus;
                busy_gpu_seconds += p.duration * p.gpus as f64;
                running.push((clock + p.duration, p.gpus));
                placements += 1;
            }
            // Advance to the next event.
            let next_finish = running
                .iter()
                .map(|(t, _)| *t)
                .fold(f64::INFINITY, f64::min);
            let next_arrival = arrivals.peek().map_or(f64::INFINITY, |j| j.arrival);
            let next = next_finish.min(next_arrival);
            if next.is_infinite() {
                assert!(
                    waiting.is_empty(),
                    "deadlock: {} jobs waiting, dispatcher idle",
                    waiting.len()
                );
                break;
            }
            clock = next;
            // Release finished placements.
            let mut still = Vec::with_capacity(running.len());
            for (t, g) in running {
                if t <= clock + 1e-12 {
                    free += g;
                } else {
                    still.push((t, g));
                }
            }
            running = still;
        }

        let makespan = clock;
        ClusterReport {
            makespan,
            avg_wait: if total_jobs > 0 {
                wait_sum / total_jobs as f64
            } else {
                0.0
            },
            utilization: if makespan > 0.0 {
                busy_gpu_seconds / (makespan * self.n_gpus as f64)
            } else {
                0.0
            },
            placements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_gpusim::GpuArch;

    /// Trivial dispatcher: one waiting job per free GPU, exclusively.
    struct OneByOne;

    impl Dispatcher for OneByOne {
        fn name(&self) -> &'static str {
            "one-by-one"
        }

        fn next_placement(
            &mut self,
            suite: &Suite,
            waiting: &[ClusterJob],
            free_gpus: usize,
            _now: f64,
        ) -> Option<Placement> {
            let job = waiting.iter().find(|j| j.gpus <= free_gpus)?;
            Some(Placement {
                job_ids: vec![job.id],
                gpus: job.gpus,
                duration: job.solo_time(suite),
            })
        }
    }

    fn suite() -> Suite {
        Suite::paper_suite(&GpuArch::a100())
    }

    #[test]
    fn single_gpu_serialises_jobs() {
        let s = suite();
        let jobs = vec![
            ClusterJob::new(0, "stream", 0.0, 1, &s),
            ClusterJob::new(1, "stream", 0.0, 1, &s),
        ];
        let report = ClusterSim::new(1).run(&s, jobs, &mut OneByOne);
        assert!((report.makespan - 20.0).abs() < 1e-9);
        assert!((report.avg_wait - 5.0).abs() < 1e-9, "{}", report.avg_wait);
        assert!((report.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_gpus_run_in_parallel() {
        let s = suite();
        let jobs = vec![
            ClusterJob::new(0, "stream", 0.0, 1, &s),
            ClusterJob::new(1, "stream", 0.0, 1, &s),
        ];
        let report = ClusterSim::new(2).run(&s, jobs, &mut OneByOne);
        assert!((report.makespan - 10.0).abs() < 1e-9);
        assert!(report.avg_wait.abs() < 1e-9);
    }

    #[test]
    fn arrivals_are_respected() {
        let s = suite();
        let jobs = vec![
            ClusterJob::new(0, "stream", 100.0, 1, &s), // arrives late
        ];
        let report = ClusterSim::new(1).run(&s, jobs, &mut OneByOne);
        assert!((report.makespan - 110.0).abs() < 1e-9);
        // Utilization counts idle waiting time.
        assert!(report.utilization < 0.2);
    }

    #[test]
    fn multi_gpu_job_takes_gang() {
        let s = suite();
        let jobs = vec![ClusterJob::new(0, "lavaMD", 0.0, 2, &s)];
        let report = ClusterSim::new(2).run(&s, jobs, &mut OneByOne);
        assert!((report.makespan - 19.0).abs() < 1e-9);
        assert!((report.utilization - 1.0).abs() < 1e-9);
    }
}
