//! The `repro bench-infer` deployed-inference harness: nanoseconds per
//! placement decision of the `hrp-nn` inference fast path, persisted
//! as `BENCH_10.json`.
//!
//! The harness builds a placement-shaped dueling Q-network (the
//! geometry `PolicySelector` deploys: `2·N + 2` state floats, one
//! action per node) and times one greedy decision through each
//! variant — the allocating [`QNet::predict`] reference, the
//! [`FastPolicy`] scalar kernel, the auto-detected kernel (AVX2 where
//! the CPU has it), and optionally the opt-in [`Int8Policy`] — over a
//! pool of synthetic placement states encoded exactly as deployment
//! encodes live loads ([`encode_placement_state`]).
//!
//! Before any number is reported the harness asserts the contract the
//! numbers depend on: every exact variant must pick the *same* action
//! as the reference on every pool state (a throughput figure for a
//! different policy would be meaningless), the fast path must beat
//! the reference mean, and the int8 variant — never on by default —
//! must clear [`INT8_AGREEMENT_GATE`] greedy agreement.
//!
//! The mean comes from block timing (`reps` timed sweeps over the
//! pool, summarised with [`RunStats`]); the p50/p99 percentiles come
//! from individually-timed decisions, which carry the `Instant`
//! read overhead and are therefore reported separately rather than
//! folded into the mean. Like its siblings, the harness is
//! dependency-free: JSON is assembled by hand
//! ([`render_infer_json`]) and written to `BENCH_10.json` by the
//! caller.

use crate::stats::RunStats;
use hrp_core::cluster_env::{encode_placement_state, placement_fit_mask, NodeLoad};
use hrp_nn::{masked_argmax, FastPolicy, Head, Int8Policy, Kernel, QNet};
use std::fmt::Write as _;
use std::time::Instant;

/// Nodes in the benched placement geometry (matches the serve bench,
/// so a decision here is the decision that harness times end-to-end).
pub const INFER_BENCH_NODES: usize = 8;
/// GPUs on the *largest* nodes; the pool mixes 1- and 2-GPU nodes so
/// wide jobs exercise the fit mask.
pub const INFER_BENCH_GPUS_PER_NODE: usize = 2;
/// Minimum greedy agreement an [`Int8Policy`] must reach against the
/// exact fast path before its numbers are reported.
pub const INT8_AGREEMENT_GATE: f64 = 0.95;

/// Sizing knobs of one `repro bench-infer` invocation.
#[derive(Debug, Clone, Copy)]
pub struct InferBenchConfig {
    /// Shrink the network and decision count for smoke runs.
    pub quick: bool,
    /// Network-init and state-pool seed.
    pub seed: u64,
    /// Repetitions per variant (`0` = the mode default).
    pub reps: usize,
    /// Also bench the opt-in int8 variant (never on by default).
    pub quantize: bool,
}

impl InferBenchConfig {
    /// Hidden layers of the benched net: the placement agent's
    /// deployed geometry, `[32, 16]` under `--quick`.
    #[must_use]
    pub fn hidden(&self) -> Vec<usize> {
        if self.quick {
            vec![32, 16]
        } else {
            vec![64, 32]
        }
    }

    /// Distinct placement states in the evaluation pool.
    #[must_use]
    pub fn states(&self) -> usize {
        if self.quick {
            256
        } else {
            1024
        }
    }

    /// Block-timed decisions per rep: 20 000 for `--quick`, 200 000
    /// otherwise.
    #[must_use]
    pub fn decisions(&self) -> usize {
        if self.quick {
            20_000
        } else {
            200_000
        }
    }

    /// Individually-timed decisions behind the percentiles.
    #[must_use]
    pub fn percentile_samples(&self) -> usize {
        if self.quick {
            4_000
        } else {
            40_000
        }
    }

    /// Repetitions per variant (explicit `reps`, else 3 quick /
    /// 5 full).
    #[must_use]
    pub fn effective_reps(&self) -> usize {
        if self.reps > 0 {
            self.reps
        } else if self.quick {
            3
        } else {
            5
        }
    }
}

/// One inference variant's summary.
#[derive(Debug, Clone)]
pub struct InferVariantResult {
    /// Row label: `predict`, `fast_scalar`, `fast`, or `int8`.
    pub variant: &'static str,
    /// Kernel behind the row (`reference`, `scalar`, `avx2`,
    /// `int8-scalar`).
    pub kernel: &'static str,
    /// Nanoseconds per greedy decision, per rep (block timing).
    pub ns_per_decision: RunStats,
    /// Median of the individually-timed decisions, in nanoseconds.
    pub p50_ns: f64,
    /// 99th percentile of the individually-timed decisions.
    pub p99_ns: f64,
    /// FNV digest of the chosen action sequence over one pool sweep
    /// (equal across all exact variants; asserted).
    pub actions_digest: u64,
}

/// The full harness output.
#[derive(Debug, Clone)]
pub struct InferBenchReport {
    /// The configuration that produced it.
    pub cfg: InferBenchConfig,
    /// State floats per decision (`2·N + 2`).
    pub state_dim: usize,
    /// Actions (nodes) per decision.
    pub n_actions: usize,
    /// Hidden layers of the benched net.
    pub hidden: Vec<usize>,
    /// Greedy agreement of the int8 variant vs the exact fast path
    /// (`None` without `--quantize`).
    pub int8_agreement: Option<f64>,
    /// `predict`, `fast_scalar`, `fast` — plus `int8` when requested.
    pub variants: Vec<InferVariantResult>,
}

/// SplitMix64 step — the harness's only randomness source, so the
/// state pool is a pure function of the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Synthesise the evaluation pool: `n` placement states encoded via
/// [`encode_placement_state`] over varied node loads (mixed 1-/2-GPU
/// nodes, so 2-GPU jobs get a partial fit mask), returned as
/// (flattened states, per-state fit masks).
fn state_pool(cfg: &InferBenchConfig) -> (Vec<f32>, Vec<u64>) {
    let n = cfg.states();
    let mut rng = cfg.seed ^ 0xda3e_39cb_94b9_5bdb;
    let mut states = Vec::with_capacity(n * (2 * INFER_BENCH_NODES + 2));
    let mut masks = Vec::with_capacity(n);
    let mut encoded = Vec::new();
    for _ in 0..n {
        let loads: Vec<NodeLoad> = (0..INFER_BENCH_NODES)
            .map(|node| {
                let r = splitmix64(&mut rng);
                // Node 0 is always full-width so no draw can leave a
                // 2-GPU job with an empty fit mask.
                let total_gpus = if node == 0 || r & 1 == 0 {
                    INFER_BENCH_GPUS_PER_NODE
                } else {
                    1
                };
                NodeLoad {
                    node,
                    total_gpus,
                    free_gpus: (r >> 1) as usize % (total_gpus + 1),
                    queued_jobs: (r >> 8) as usize % 5,
                    outstanding: (r >> 16) as f64 % 4096.0 * 0.37,
                }
            })
            .collect();
        let r = splitmix64(&mut rng);
        // 1-GPU jobs fit everywhere; 2-GPU jobs mask out the 1-GPU
        // nodes — both mask shapes appear in the pool.
        let gpus = 1 + (r & 1) as usize;
        let work = 30.0 + (r >> 1) as f64 % 1024.0;
        let mask = placement_fit_mask(&loads, gpus);
        assert!(mask != 0, "node 0 always fits");
        encode_placement_state(&loads, gpus, work, &mut encoded);
        states.extend_from_slice(&encoded);
        masks.push(mask);
    }
    (states, masks)
}

/// FNV-1a over a chosen-action sequence.
fn fnv1a(actions: impl Iterator<Item = usize>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for a in actions {
        h ^= a as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Time one variant: `reps` block-timed sweeps for the mean, then one
/// individually-timed pass for the percentiles, plus the
/// action-sequence digest of a pool sweep.
fn time_variant(
    variant: &'static str,
    kernel: &'static str,
    cfg: &InferBenchConfig,
    states: &[f32],
    masks: &[u64],
    dim: usize,
    mut greedy: impl FnMut(&[f32], u64) -> usize,
) -> InferVariantResult {
    let pool = masks.len();
    let state = |i: usize| &states[(i % pool) * dim..(i % pool) * dim + dim];
    // Digest pass (also warms caches and branch predictors).
    let actions_digest = fnv1a((0..pool).map(|i| greedy(state(i), masks[i % pool])));
    // Blackhole so the timed loops cannot be hoisted away.
    let mut sink = 0usize;
    let decisions = cfg.decisions();
    let mut samples = Vec::with_capacity(cfg.effective_reps());
    for _ in 0..cfg.effective_reps() {
        let start = Instant::now();
        for i in 0..decisions {
            sink = sink.wrapping_add(greedy(state(i), masks[i % pool]));
        }
        samples.push(start.elapsed().as_nanos() as f64 / decisions as f64);
    }
    let mut per_call: Vec<f64> = (0..cfg.percentile_samples())
        .map(|i| {
            let start = Instant::now();
            sink = sink.wrapping_add(greedy(state(i), masks[i % pool]));
            start.elapsed().as_nanos() as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let pct = |q: f64| per_call[((per_call.len() - 1) as f64 * q).round() as usize];
    std::hint::black_box(sink);
    InferVariantResult {
        variant,
        kernel,
        ns_per_decision: RunStats::from_samples(&samples),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        actions_digest,
    }
}

/// Run the full harness: the reference and both fast-path kernels
/// (plus int8 with `quantize`), equivalence-checked before timing is
/// trusted.
///
/// # Panics
/// Panics if any exact variant disagrees with the reference on any
/// pool state, if the auto-kernel fast path fails to beat the
/// `predict` reference mean, or if the int8 variant falls below
/// [`INT8_AGREEMENT_GATE`] — each would make the numbers meaningless,
/// not merely slow.
#[must_use]
pub fn run_infer_bench(cfg: &InferBenchConfig) -> InferBenchReport {
    let state_dim = 2 * INFER_BENCH_NODES + 2;
    let n_actions = INFER_BENCH_NODES;
    let hidden = cfg.hidden();
    let net = QNet::new(state_dim, &hidden, n_actions, Head::Dueling, cfg.seed);
    let (states, masks) = state_pool(cfg);

    let mut fast_scalar = FastPolicy::with_kernel(&net, Kernel::Scalar);
    let mut fast_auto = FastPolicy::new(&net);
    // The contract behind every row: same action everywhere.
    for (i, &mask) in masks.iter().enumerate() {
        let s = &states[i * state_dim..(i + 1) * state_dim];
        let q = net.predict(s);
        let reference = masked_argmax(&q, |a| mask & (1 << a) != 0).expect("non-empty mask");
        assert_eq!(
            fast_scalar.greedy(s, mask),
            reference,
            "scalar fast path diverged from predict on pool state {i}"
        );
        assert_eq!(
            fast_auto.greedy(s, mask),
            reference,
            "{} fast path diverged from predict on pool state {i}",
            fast_auto.kernel().name()
        );
    }

    let mut variants = vec![
        time_variant(
            "predict",
            "reference",
            cfg,
            &states,
            &masks,
            state_dim,
            |s, m| {
                let q = net.predict(s);
                masked_argmax(&q, |a| m & (1 << a) != 0).expect("non-empty mask")
            },
        ),
        time_variant(
            "fast_scalar",
            Kernel::Scalar.name(),
            cfg,
            &states,
            &masks,
            state_dim,
            {
                let p = &mut fast_scalar;
                move |s, m| p.greedy(s, m)
            },
        ),
        time_variant(
            "fast",
            fast_auto.kernel().name(),
            cfg,
            &states,
            &masks,
            state_dim,
            {
                let p = &mut fast_auto;
                move |s, m| p.greedy(s, m)
            },
        ),
    ];
    assert_eq!(
        variants[0].actions_digest, variants[1].actions_digest,
        "scalar action digest diverged"
    );
    assert_eq!(
        variants[0].actions_digest, variants[2].actions_digest,
        "auto-kernel action digest diverged"
    );
    assert!(
        variants[2].ns_per_decision.mean < variants[0].ns_per_decision.mean,
        "fast path ({:.1} ns) must beat the predict reference ({:.1} ns)",
        variants[2].ns_per_decision.mean,
        variants[0].ns_per_decision.mean
    );

    let int8_agreement = cfg.quantize.then(|| {
        let mut int8 = Int8Policy::new(&net);
        let agreement =
            hrp_nn::infer::greedy_agreement(&mut fast_scalar, &mut int8, &states, &masks);
        assert!(
            agreement >= INT8_AGREEMENT_GATE,
            "int8 greedy agreement {agreement:.4} below the \
             {INT8_AGREEMENT_GATE} gate; the quantized policy is not a \
             faithful stand-in for this net"
        );
        variants.push(time_variant(
            "int8",
            "int8-scalar",
            cfg,
            &states,
            &masks,
            state_dim,
            {
                let p = &mut int8;
                move |s, m| p.greedy(s, m)
            },
        ));
        agreement
    });

    InferBenchReport {
        cfg: *cfg,
        state_dim,
        n_actions,
        hidden,
        int8_agreement,
        variants,
    }
}

/// A finite f64 as a JSON number (Rust's shortest-roundtrip rendering
/// is valid JSON for every finite value).
fn jnum(x: f64) -> String {
    debug_assert!(x.is_finite());
    format!("{x:?}")
}

/// Render the report as the `infer/v1` JSON document.
#[must_use]
pub fn render_infer_json(report: &InferBenchReport) -> String {
    let cfg = &report.cfg;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"infer/v1\",");
    let _ = writeln!(out, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"nodes\": {INFER_BENCH_NODES},");
    let _ = writeln!(out, "  \"gpus_per_node\": {INFER_BENCH_GPUS_PER_NODE},");
    let _ = writeln!(out, "  \"state_dim\": {},", report.state_dim);
    let _ = writeln!(out, "  \"n_actions\": {},", report.n_actions);
    let hidden: Vec<String> = report.hidden.iter().map(ToString::to_string).collect();
    let _ = writeln!(out, "  \"hidden\": [{}],", hidden.join(", "));
    let _ = writeln!(out, "  \"states\": {},", cfg.states());
    let _ = writeln!(out, "  \"decisions_per_rep\": {},", cfg.decisions());
    let _ = writeln!(out, "  \"reps\": {},", cfg.effective_reps());
    let _ = writeln!(out, "  \"quantize\": {},", cfg.quantize);
    match report.int8_agreement {
        Some(a) => {
            let _ = writeln!(out, "  \"int8_agreement\": {},", jnum(a));
        }
        None => {
            let _ = writeln!(out, "  \"int8_agreement\": null,");
        }
    }
    let _ = writeln!(out, "  \"rows\": [");
    let mut first = true;
    for v in &report.variants {
        if !first {
            let _ = writeln!(out, ",");
        }
        first = false;
        let s = &v.ns_per_decision;
        let _ = write!(
            out,
            "    {{\"variant\": \"{}\", \"kernel\": \"{}\", \
             \"ns_per_decision\": {}, \"std_err\": {}, \
             \"ci95_lo\": {}, \"ci95_hi\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \
             \"actions_digest\": \"{:016x}\"}}",
            v.variant,
            v.kernel,
            jnum(s.mean),
            jnum(s.std_err),
            jnum(s.ci95_lo),
            jnum(s.ci95_hi),
            jnum(v.p50_ns),
            jnum(v.p99_ns),
            v.actions_digest,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A down-sized config so the harness tests stay fast; everything
    /// else (pool synthesis, equivalence asserts, JSON shape) is the
    /// real path.
    fn tiny_cfg(quantize: bool) -> InferBenchConfig {
        InferBenchConfig {
            quick: true,
            seed: 42,
            reps: 1,
            quantize,
        }
    }

    #[test]
    fn pool_is_deterministic_and_mixes_mask_shapes() {
        let cfg = tiny_cfg(false);
        let (s1, m1) = state_pool(&cfg);
        let (s2, m2) = state_pool(&cfg);
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
        assert_eq!(s1.len(), cfg.states() * (2 * INFER_BENCH_NODES + 2));
        let full = (1u64 << INFER_BENCH_NODES) - 1;
        assert!(m1.contains(&full), "no 1-GPU-job mask");
        assert!(m1.iter().any(|&m| m != full), "no partial mask");
        assert!(m1.iter().all(|&m| m != 0));
    }

    #[test]
    fn harness_rows_agree_and_fast_wins() {
        let report = run_infer_bench(&tiny_cfg(false));
        assert_eq!(report.variants.len(), 3);
        assert_eq!(report.int8_agreement, None);
        let d = report.variants[0].actions_digest;
        assert!(report.variants.iter().all(|v| v.actions_digest == d));
        assert!(report.variants[2].ns_per_decision.mean < report.variants[0].ns_per_decision.mean);
        assert!(report.variants.iter().all(|v| v.p50_ns <= v.p99_ns));
    }

    #[test]
    fn quantize_adds_a_gated_int8_row() {
        let report = run_infer_bench(&tiny_cfg(true));
        assert_eq!(report.variants.len(), 4);
        assert_eq!(report.variants[3].variant, "int8");
        let agreement = report.int8_agreement.expect("agreement measured");
        assert!(agreement >= INT8_AGREEMENT_GATE, "{agreement}");
    }

    #[test]
    fn json_document_has_the_promised_fields() {
        let json = render_infer_json(&run_infer_bench(&tiny_cfg(false)));
        for field in [
            "\"schema\": \"infer/v1\"",
            "\"ns_per_decision\"",
            "\"std_err\"",
            "\"ci95_lo\"",
            "\"ci95_hi\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"actions_digest\"",
            "\"int8_agreement\": null",
            "\"variant\": \"predict\"",
            "\"variant\": \"fast_scalar\"",
            "\"variant\": \"fast\"",
            "\"kernel\": \"reference\"",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // "inf" alone would false-positive on the schema name.
        assert!(!json.contains("NaN") && !json.contains(": inf") && !json.contains(": -inf"));
    }

    #[test]
    fn config_sizing() {
        let mut cfg = tiny_cfg(false);
        cfg.reps = 0;
        assert_eq!(cfg.decisions(), 20_000);
        assert_eq!(cfg.effective_reps(), 3);
        assert_eq!(cfg.hidden(), vec![32, 16]);
        cfg.quick = false;
        assert_eq!(cfg.decisions(), 200_000);
        assert_eq!(cfg.effective_reps(), 5);
        assert_eq!(cfg.hidden(), vec![64, 32]);
        cfg.reps = 7;
        assert_eq!(cfg.effective_reps(), 7);
    }
}
