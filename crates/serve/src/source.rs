//! Arrival ingestion for the online scheduler service.
//!
//! [`ArrivalSource`] abstracts where jobs come from so the service's
//! decision loop never knows whether it is replaying a finite trace,
//! draining a live channel, or being driven open-loop by a load
//! generator:
//!
//! * [`TraceSource`] — adapts [`hrp_cluster::trace::stream`], so any
//!   [`TraceConfig`] the batch engines replay can be served online
//!   (this is the digest-oracle path: same jobs, same order).
//! * [`ChannelSource`] — an `std::sync::mpsc` receiver; producers on
//!   other threads submit [`ClusterJob`]s and the service ingests them
//!   without blocking. Live input has no replayable position, so this
//!   source refuses to checkpoint.
//! * [`LoadGen`] — a seed-deterministic open-loop generator offering
//!   jobs at a configurable rate until a horizon, either as a Poisson
//!   process ([`LoadShape::Poisson`]) or in same-instant bursts
//!   ([`LoadShape::Bursty`]).
//!
//! Every source reports how many jobs it has handed out
//! ([`ArrivalSource::consumed`]); the deterministic sources resume
//! from a checkpoint by rebuilding themselves from their spec and
//! replaying that many draws, which restores the RNG cursor exactly.

use hrp_cluster::job::ClusterJob;
use hrp_cluster::trace::{
    assign_user, stream, user_popularity, TraceConfig, TraceStream, DEFAULT_USER_SKEW,
};
use hrp_workloads::Suite;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};

/// One ingest attempt's outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePoll {
    /// The next arrival. Sources must hand jobs out in non-decreasing
    /// arrival order (the service asserts it).
    Job(ClusterJob),
    /// Nothing available *right now*, but the source is still open —
    /// the caller should retry later (live channels while producers
    /// are thinking).
    Pending,
    /// The source is exhausted; no further jobs will ever come.
    /// Closed is sticky: every later poll returns it again.
    Closed,
}

/// An unbounded (or finite) stream of job arrivals the service
/// ingests event by event.
pub trait ArrivalSource {
    /// Source family name (`trace` / `channel` / `poisson` /
    /// `bursty`) — the checkpoint's `source` spec key.
    fn name(&self) -> &'static str;

    /// Pull the next arrival, if one is available.
    fn poll(&mut self) -> SourcePoll;

    /// Jobs handed out so far — the stream position a checkpoint
    /// records.
    fn consumed(&self) -> usize;

    /// The `key=value` pairs that let [`ArrivalSource::consumed`]
    /// draws of an identically-specced rebuild reproduce this
    /// source's state, or `None` if the source cannot be checkpointed
    /// (a live channel has no replayable position).
    fn checkpoint_spec(&self) -> Option<Vec<(&'static str, String)>>;
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn poll(&mut self) -> SourcePoll {
        (**self).poll()
    }

    fn consumed(&self) -> usize {
        (**self).consumed()
    }

    fn checkpoint_spec(&self) -> Option<Vec<(&'static str, String)>> {
        (**self).checkpoint_spec()
    }
}

/// A finite [`TraceConfig`] replayed job by job through
/// [`hrp_cluster::trace::stream`] — the source whose service run is
/// digest-comparable to the batch engines.
pub struct TraceSource<'a> {
    stream: TraceStream<'a>,
    cfg: TraceConfig,
    consumed: usize,
}

impl<'a> TraceSource<'a> {
    /// Stream the trace `cfg` describes from the beginning.
    ///
    /// # Panics
    /// Same conditions as [`hrp_cluster::trace::stream`].
    #[must_use]
    pub fn new(suite: &'a Suite, cfg: TraceConfig) -> Self {
        Self {
            stream: stream(suite, &cfg),
            cfg,
            consumed: 0,
        }
    }

    /// Resume a trace source at `consumed` jobs already handed out:
    /// rebuild the stream and skip that many draws, restoring the RNG
    /// cursor bit-exactly.
    ///
    /// # Panics
    /// Panics if `consumed` exceeds the trace length.
    #[must_use]
    pub fn resume(suite: &'a Suite, cfg: TraceConfig, consumed: usize) -> Self {
        assert!(
            consumed <= cfg.jobs,
            "resume position {consumed} beyond the {}-job trace",
            cfg.jobs
        );
        let mut source = Self::new(suite, cfg);
        for _ in 0..consumed {
            source.stream.next().expect("within the trace");
        }
        source.consumed = consumed;
        source
    }

    /// The trace being replayed.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }
}

impl ArrivalSource for TraceSource<'_> {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn poll(&mut self) -> SourcePoll {
        match self.stream.next() {
            Some(job) => {
                self.consumed += 1;
                SourcePoll::Job(job)
            }
            None => SourcePoll::Closed,
        }
    }

    fn consumed(&self) -> usize {
        self.consumed
    }

    fn checkpoint_spec(&self) -> Option<Vec<(&'static str, String)>> {
        Some(vec![
            ("kind", self.cfg.kind.name().to_owned()),
            ("jobs", self.cfg.jobs.to_string()),
            ("seed", self.cfg.seed.to_string()),
            ("max_gpus", self.cfg.max_gpus.to_string()),
            ("mean_gap", format!("{:?}", self.cfg.mean_gap)),
            ("gang_share", format!("{:?}", self.cfg.gang_share)),
            ("users", self.cfg.users.to_string()),
            ("user_skew", format!("{:?}", self.cfg.user_skew)),
        ])
    }
}

/// Live arrivals over an `std::sync::mpsc` channel: producers submit
/// [`ClusterJob`]s from other threads; the service polls without
/// blocking. Closing every sender closes the source.
pub struct ChannelSource {
    rx: Receiver<ClusterJob>,
    consumed: usize,
    closed: bool,
}

impl ChannelSource {
    /// Wrap an existing receiver.
    #[must_use]
    pub fn new(rx: Receiver<ClusterJob>) -> Self {
        Self {
            rx,
            consumed: 0,
            closed: false,
        }
    }

    /// A fresh submission channel: hand the [`Sender`] to producers,
    /// the source to the service.
    #[must_use]
    pub fn channel() -> (Sender<ClusterJob>, Self) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, Self::new(rx))
    }
}

impl ArrivalSource for ChannelSource {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn poll(&mut self) -> SourcePoll {
        if self.closed {
            return SourcePoll::Closed;
        }
        match self.rx.try_recv() {
            Ok(job) => {
                self.consumed += 1;
                SourcePoll::Job(job)
            }
            Err(TryRecvError::Empty) => SourcePoll::Pending,
            Err(TryRecvError::Disconnected) => {
                self.closed = true;
                SourcePoll::Closed
            }
        }
    }

    fn consumed(&self) -> usize {
        self.consumed
    }

    fn checkpoint_spec(&self) -> Option<Vec<(&'static str, String)>> {
        None
    }
}

/// Arrival pattern of a [`LoadGen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadShape {
    /// Independent exponential inter-arrival gaps at the offered rate.
    Poisson,
    /// Same-instant bursts of 2–5 jobs; inter-burst gaps scaled so the
    /// long-run offered rate matches.
    Bursty,
}

impl LoadShape {
    /// The CLI-style name (`poisson` / `bursty`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Poisson => "poisson",
            Self::Bursty => "bursty",
        }
    }
}

/// A seed-deterministic open-loop load generator: offers jobs at
/// `rate` jobs per simulated second until the `duration` horizon,
/// drawing benchmarks uniformly from the suite and widening a fifth
/// of the jobs into gangs (when the GPU bound allows). Open-loop —
/// the offered load never waits for the cluster, which is what makes
/// sustained decisions/sec a meaningful service metric.
///
/// Determinism: the emitted sequence is a pure function of
/// `(shape, rate, duration, seed, max_gpus)`, so a checkpoint records
/// only those and the number of jobs already handed out.
pub struct LoadGen<'a> {
    suite: &'a Suite,
    shape: LoadShape,
    rate: f64,
    duration: f64,
    seed: u64,
    max_gpus: usize,
    users: u32,
    user_skew: f64,
    popularity: Vec<f64>,
    rng: SmallRng,
    t: f64,
    next_id: usize,
    burst_left: usize,
    consumed: usize,
    closed: bool,
}

impl<'a> LoadGen<'a> {
    /// A generator offering `rate` jobs/second until `duration`.
    ///
    /// # Panics
    /// Panics unless `rate` and `duration` are positive and finite
    /// and `max_gpus >= 1`.
    #[must_use]
    pub fn new(suite: &'a Suite, shape: LoadShape, rate: f64, duration: f64, seed: u64) -> Self {
        Self::with_max_gpus(suite, shape, rate, duration, seed, 2)
    }

    /// Like [`LoadGen::new`] with an explicit per-job GPU bound.
    ///
    /// # Panics
    /// Same conditions as [`LoadGen::new`].
    #[must_use]
    pub fn with_max_gpus(
        suite: &'a Suite,
        shape: LoadShape,
        rate: f64,
        duration: f64,
        seed: u64,
        max_gpus: usize,
    ) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "offered rate must be positive and finite, got {rate}"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive and finite, got {duration}"
        );
        assert!(max_gpus >= 1, "max_gpus must be at least 1");
        Self {
            suite,
            shape,
            rate,
            duration,
            seed,
            max_gpus,
            users: 0,
            user_skew: DEFAULT_USER_SKEW,
            popularity: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            t: 0.0,
            next_id: 0,
            burst_left: 0,
            consumed: 0,
            closed: false,
        }
    }

    /// Builder: tag emitted jobs with Zipf-skewed tenant ids in
    /// `0..users` (`0` = untagged, the default). The draw mirrors
    /// [`hrp_cluster::trace::assign_user`] — a stateless per-job-id
    /// hash layered after the arrival/mix draws, so the RNG stream and
    /// every arrival instant are bit-identical to an untagged run.
    ///
    /// # Panics
    /// Panics unless `skew` is positive and finite (with `users ≥ 2`).
    #[must_use]
    pub fn with_users(mut self, users: u32, skew: f64) -> Self {
        self.users = users;
        self.user_skew = skew;
        self.popularity = user_popularity(users, skew);
        self
    }

    /// Resume a generator at `consumed` jobs already handed out by
    /// replaying that many draws of an identically-specced rebuild.
    ///
    /// # Panics
    /// Panics if the generator's horizon closes before `consumed`
    /// jobs; the checkpoint-restore path uses [`LoadGen::resume_to`]
    /// to turn that into a typed error instead.
    #[must_use]
    pub fn resume(
        suite: &'a Suite,
        shape: LoadShape,
        rate: f64,
        duration: f64,
        seed: u64,
        max_gpus: usize,
        consumed: usize,
    ) -> Self {
        Self::with_max_gpus(suite, shape, rate, duration, seed, max_gpus)
            .resume_to(consumed)
            .unwrap_or_else(|| panic!("resume position {consumed} beyond the generator's horizon"))
    }

    /// Replay `consumed` draws on this (freshly built) generator,
    /// restoring the RNG cursor bit-exactly. Returns `None` — instead
    /// of panicking — if the horizon closes first, which is how a
    /// forged checkpoint position surfaces as a typed
    /// [`crate::CheckpointError`] rather than a crash.
    #[must_use]
    pub fn resume_to(mut self, consumed: usize) -> Option<Self> {
        assert_eq!(self.consumed, 0, "resume_to needs a fresh generator");
        for _ in 0..consumed {
            if !matches!(self.poll(), SourcePoll::Job(_)) {
                return None;
            }
        }
        Some(self)
    }

    /// An exponential gap with mean `1 / rate` (inverse-CDF over a
    /// uniform draw; `1 - u` keeps the argument of `ln` positive).
    fn exp_gap(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() / self.rate
    }

    /// One job at the current instant. Both the wide-or-not and the
    /// width draw are taken unconditionally so the stream position
    /// never depends on `max_gpus`.
    fn emit(&mut self) -> ClusterJob {
        let bench = self.rng.gen_range(0..self.suite.len());
        let wide = self.rng.gen_bool(0.2);
        let width = self.rng.gen_range(2usize..5);
        let gpus = if wide && self.max_gpus >= 2 {
            width.min(self.max_gpus)
        } else {
            1
        };
        let mut job = ClusterJob {
            id: self.next_id,
            name: self.suite.by_index(bench).app.name.clone(),
            bench,
            arrival: self.t,
            gpus,
            user: 0,
        };
        assign_user(self.seed, &self.popularity, &mut job);
        self.next_id += 1;
        self.consumed += 1;
        job
    }
}

impl ArrivalSource for LoadGen<'_> {
    fn name(&self) -> &'static str {
        self.shape.name()
    }

    fn poll(&mut self) -> SourcePoll {
        if self.closed {
            return SourcePoll::Closed;
        }
        match self.shape {
            LoadShape::Poisson => {
                self.t += self.exp_gap();
                if self.t > self.duration {
                    self.closed = true;
                    return SourcePoll::Closed;
                }
                SourcePoll::Job(self.emit())
            }
            LoadShape::Bursty => {
                if self.burst_left == 0 {
                    let burst = self.rng.gen_range(2usize..6);
                    // The burst's whole arrival budget lands on the gap
                    // before it, so the long-run rate stays `rate`.
                    self.t += burst as f64 * self.exp_gap();
                    if self.t > self.duration {
                        self.closed = true;
                        return SourcePoll::Closed;
                    }
                    self.burst_left = burst;
                }
                self.burst_left -= 1;
                SourcePoll::Job(self.emit())
            }
        }
    }

    fn consumed(&self) -> usize {
        self.consumed
    }

    fn checkpoint_spec(&self) -> Option<Vec<(&'static str, String)>> {
        Some(vec![
            ("rate", format!("{:?}", self.rate)),
            ("duration", format!("{:?}", self.duration)),
            ("seed", self.seed.to_string()),
            ("max_gpus", self.max_gpus.to_string()),
            ("users", self.users.to_string()),
            ("user_skew", format!("{:?}", self.user_skew)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_cluster::trace::TraceKind;
    use hrp_gpusim::GpuArch;

    fn suite() -> Suite {
        Suite::paper_suite(&GpuArch::a100())
    }

    fn drain(mut src: impl ArrivalSource) -> Vec<ClusterJob> {
        let mut jobs = Vec::new();
        loop {
            match src.poll() {
                SourcePoll::Job(j) => jobs.push(j),
                SourcePoll::Pending => panic!("deterministic sources never pend"),
                SourcePoll::Closed => return jobs,
            }
        }
    }

    #[test]
    fn trace_source_replays_the_generated_trace_exactly() {
        let s = suite();
        let cfg = TraceConfig::new(TraceKind::Bursty, 40, 7).gang_share(0.25);
        let jobs = drain(TraceSource::new(&s, cfg.clone()));
        assert_eq!(jobs, hrp_cluster::trace::generate(&s, &cfg));
    }

    #[test]
    fn trace_source_resumes_mid_stream_bit_exactly() {
        let s = suite();
        let cfg = TraceConfig::new(TraceKind::Skewed, 30, 11);
        let full = drain(TraceSource::new(&s, cfg.clone()));
        for cut in [0usize, 1, 13, 29, 30] {
            let rest = drain(TraceSource::resume(&s, cfg.clone(), cut));
            assert_eq!(rest.len(), 30 - cut);
            assert_eq!(rest.as_slice(), &full[cut..], "cut at {cut}");
        }
    }

    #[test]
    fn channel_source_pends_then_closes() {
        let s = suite();
        let (tx, mut src) = ChannelSource::channel();
        assert_eq!(src.poll(), SourcePoll::Pending);
        tx.send(ClusterJob::new(0, "stream", 1.0, 1, &s)).unwrap();
        assert!(matches!(src.poll(), SourcePoll::Job(j) if j.id == 0));
        drop(tx);
        assert_eq!(src.poll(), SourcePoll::Closed);
        assert_eq!(src.poll(), SourcePoll::Closed, "closed is sticky");
        assert_eq!(src.consumed(), 1);
        assert!(src.checkpoint_spec().is_none(), "live input: no spec");
    }

    #[test]
    fn load_gen_is_deterministic_ordered_and_rate_shaped() {
        let s = suite();
        for shape in [LoadShape::Poisson, LoadShape::Bursty] {
            let a = drain(LoadGen::new(&s, shape, 4.0, 100.0, 9));
            let b = drain(LoadGen::new(&s, shape, 4.0, 100.0, 9));
            assert_eq!(a, b, "{}: pure function of the spec", shape.name());
            assert!(
                a.windows(2).all(|w| w[0].arrival <= w[1].arrival),
                "{}: arrivals non-decreasing",
                shape.name()
            );
            assert!(
                a.iter().enumerate().all(|(i, j)| j.id == i),
                "{}: dense ids",
                shape.name()
            );
            // ~4 jobs/s over 100 s ≈ 400 jobs; allow generous slack.
            assert!(
                (150..=800).contains(&a.len()),
                "{}: offered {} jobs at rate 4 over 100 s",
                shape.name(),
                a.len()
            );
        }
    }

    #[test]
    fn bursty_load_gen_clumps_arrival_instants() {
        let s = suite();
        let jobs = drain(LoadGen::new(&s, LoadShape::Bursty, 4.0, 50.0, 3));
        let shared = jobs
            .windows(2)
            .filter(|w| w[0].arrival.to_bits() == w[1].arrival.to_bits())
            .count();
        assert!(shared * 2 >= jobs.len(), "bursts share instants: {shared}");
    }

    #[test]
    fn load_gen_resumes_mid_stream_bit_exactly() {
        let s = suite();
        for shape in [LoadShape::Poisson, LoadShape::Bursty] {
            let full = drain(LoadGen::new(&s, shape, 6.0, 40.0, 21));
            let cut = full.len() / 2;
            let rest = drain(LoadGen::resume(&s, shape, 6.0, 40.0, 21, 2, cut));
            assert_eq!(rest.as_slice(), &full[cut..], "{}", shape.name());
        }
    }

    #[test]
    fn load_gen_user_tagging_leaves_the_stream_untouched() {
        let s = suite();
        let plain = drain(LoadGen::new(&s, LoadShape::Bursty, 4.0, 50.0, 3));
        let tagged = drain(LoadGen::new(&s, LoadShape::Bursty, 4.0, 50.0, 3).with_users(4, 1.4));
        assert_eq!(plain.len(), tagged.len());
        let mut seen = [false; 4];
        for (a, b) in plain.iter().zip(&tagged) {
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!((a.id, a.bench, a.gpus), (b.id, b.bench, b.gpus));
            assert_eq!(a.user, 0);
            seen[b.user as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "every tenant appears");
    }

    #[test]
    fn resume_beyond_the_horizon_returns_none_not_a_panic() {
        let s = suite();
        let fresh = || LoadGen::new(&s, LoadShape::Poisson, 2.0, 20.0, 5);
        let total = drain(fresh()).len();
        assert!(fresh().resume_to(total).is_some());
        assert!(fresh().resume_to(total + 1).is_none());
    }

    #[test]
    #[should_panic(expected = "offered rate must be positive")]
    fn zero_rate_is_rejected() {
        let s = suite();
        let _ = LoadGen::new(&s, LoadShape::Poisson, 0.0, 10.0, 1);
    }
}
