//! Multi-node placement comparison backing `repro cluster`.
//!
//! One deterministic staggered trace is run through an `N`-node
//! [`MultiNodeSim`] under the chosen [`SelectorKind`], and through the
//! original single-node [`ClusterSim`] as the baseline every placement
//! policy is compared against. Each node runs the co-scheduling
//! dispatcher with the evaluation defaults (`W = 4` windows,
//! `Cmax = 4`, the MPS-only node policy — no training required, so the
//! command is cheap). With `nodes = 1` the multi-node path reproduces
//! the baseline bit-for-bit (see `tests/multinode_contract.rs`).

use hrp_cluster::multinode::{staggered_trace, MultiNodeReport, MultiNodeSim};
use hrp_cluster::sim::ClusterSim;
use hrp_cluster::{ClusterReport, CoSchedulingDispatcher, SelectorKind};
use hrp_core::policies::MpsOnly;
use hrp_workloads::Suite;

/// Window size of each node's co-scheduling dispatcher.
pub const CLUSTER_W: usize = 4;
/// Concurrency cap of each node's co-scheduling dispatcher.
pub const CLUSTER_CMAX: usize = 4;
/// GPUs per simulated node.
pub const GPUS_PER_NODE: usize = 2;

/// A fresh node-local dispatcher with the evaluation defaults.
#[must_use]
pub fn node_dispatcher() -> CoSchedulingDispatcher<MpsOnly> {
    CoSchedulingDispatcher::new(MpsOnly, CLUSTER_W, CLUSTER_CMAX)
}

/// An `N`-node run next to its single-node baseline.
#[derive(Debug)]
pub struct ClusterComparison {
    /// The multi-node run.
    pub report: MultiNodeReport,
    /// The same trace through the single-node simulator.
    pub baseline: ClusterReport,
}

impl ClusterComparison {
    /// Cluster-makespan speedup over the single-node baseline.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.report.aggregate.makespan > 0.0 {
            self.baseline.makespan / self.report.aggregate.makespan
        } else {
            1.0
        }
    }
}

/// Run the staggered `n_jobs` trace on `nodes` nodes under `selector`,
/// and on the single-node baseline. `threads` caps the per-epoch node
/// fan-out (`0` = available parallelism); results are identical for
/// any value.
#[must_use]
pub fn cluster_compare(
    suite: &Suite,
    n_jobs: usize,
    nodes: usize,
    selector: SelectorKind,
    threads: usize,
) -> ClusterComparison {
    let jobs = staggered_trace(suite, n_jobs);
    let mut sel = selector.build();
    let report = MultiNodeSim::new(nodes, GPUS_PER_NODE)
        .with_threads(threads)
        .run(suite, jobs.clone(), sel.as_mut(), |_| node_dispatcher());
    let mut base = node_dispatcher();
    let baseline = ClusterSim::new(GPUS_PER_NODE).run(suite, jobs, &mut base);
    ClusterComparison { report, baseline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_gpusim::GpuArch;

    #[test]
    fn one_node_comparison_is_the_baseline_itself() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        let cmp = cluster_compare(&suite, 16, 1, SelectorKind::RoundRobin, 1);
        assert_eq!(cmp.report.aggregate, cmp.baseline);
        assert!((cmp.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_nodes_beat_the_single_node_baseline() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        for selector in [SelectorKind::RoundRobin, SelectorKind::LeastLoaded] {
            let cmp = cluster_compare(&suite, 24, 4, selector, 0);
            assert!(
                cmp.speedup() > 1.0,
                "{}: 4 nodes should beat 1 ({} vs {})",
                selector.name(),
                cmp.report.aggregate.makespan,
                cmp.baseline.makespan
            );
            assert_eq!(cmp.report.completed_jobs(), 24);
        }
    }
}
