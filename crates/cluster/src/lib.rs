//! # hrp-cluster — the cluster-scale extension (paper §VI)
//!
//! The paper's Discussion sketches how node-local hierarchical
//! partitioning extends to a cluster: add a top level of node/GPU
//! allocation, include each job's requested GPU count in its feature
//! vector, and switch between co-scheduling (for over-crowded queues) and
//! classic FCFS + backfilling (for light load). This crate implements
//! that sketch:
//!
//! * [`job`] — cluster jobs with arrival times and GPU counts;
//! * [`sim`] — an event-driven cluster simulator (GPUs as resources,
//!   job completions as events);
//! * [`fcfs`] — First-Come-First-Serve with conservative backfilling
//!   (the comparator the paper names);
//! * [`cosched`] — the co-scheduling dispatcher: single-GPU jobs are
//!   batched into windows and handed to any node-local
//!   [`hrp_core::policies::Policy`]; multi-GPU jobs gang-schedule
//!   exclusively (the paper flags co-locating them as future work).
//!   Crowded backlogs drain their windows through a parallel planner
//!   ([`CoSchedulingDispatcher::with_threads`]) that is schedule-
//!   identical to the serial drain for any thread count;
//! * [`select`] — the queue-pressure policy selector of §VI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cosched;
pub mod fcfs;
pub mod job;
pub mod select;
pub mod sim;

pub use cosched::CoSchedulingDispatcher;
pub use fcfs::FcfsBackfill;
pub use job::ClusterJob;
pub use select::{select_policy, PressurePolicy};
pub use sim::{ClusterReport, ClusterSim};
