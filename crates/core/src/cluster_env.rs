//! Cluster-level job placement: the [`NodeSelector`] contract, the
//! shared placement state encoding, and the [`PolicySelector`] bridge
//! from a trained RL snapshot to a drop-in selector.
//!
//! The paper's §VI sketch adds a *global* tier above the node-local
//! MIG+MPS partitioning: a job first has to be assigned to a node, and
//! only then does the node-local hierarchy decide how to run it. Liu et
//! al.'s hierarchical cloud framework (see PAPERS.md) trains exactly
//! that global tier with RL. This module holds the pieces both sides of
//! that loop share:
//!
//! * [`NodeSelector`] is the placement contract the multi-node cluster
//!   simulator (`hrp-cluster::multinode`) feeds its global arrival
//!   queue through. Heuristics (round-robin, least-loaded) live in
//!   `hrp-cluster::select`; anything implementing the trait can drive
//!   placement.
//! * [`encode_placement_state`] is the state encoding the placement
//!   environment (`hrp-cluster::place::ClusterEnv`, which replays each
//!   episode through the real multi-node simulator and pays
//!   simulation-derived rewards) and [`PolicySelector`] share, so a
//!   policy trained on simulated episodes sees live loads in the same
//!   coordinates.
//! * [`PolicySelector`] closes the loop: it encodes *live* node loads
//!   and asks a frozen [`GreedyPolicy`] for its action — a learner trained
//!   on placement episodes becomes a drop-in [`NodeSelector`].
//!
//! The environment itself lives in `hrp-cluster` (it drives the
//! event-driven node simulators, which this crate cannot depend on);
//! only the selector-side contract lives here.

use crate::rl::GreedyPolicy;

/// A snapshot of one node's load, as seen by a [`NodeSelector`] when a
/// job arrives. Indexed by node id in the slice handed to
/// [`NodeSelector::select`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// Node id (equal to the entry's index in the loads slice).
    pub node: usize,
    /// GPUs installed on the node.
    pub total_gpus: usize,
    /// GPUs currently idle.
    pub free_gpus: usize,
    /// Jobs waiting (or en route) on the node.
    pub queued_jobs: usize,
    /// Outstanding GPU-work estimate in seconds: remaining run time of
    /// active placements plus the solo-time of everything queued.
    pub outstanding: f64,
}

impl NodeLoad {
    /// Outstanding work per installed GPU — the queue-delay estimate a
    /// new arrival faces on this node, and the quantity the placement
    /// environment's per-decision reward is phrased in.
    #[must_use]
    pub fn per_gpu_outstanding(&self) -> f64 {
        self.outstanding / self.total_gpus.max(1) as f64
    }
}

/// The global placement tier: picks the node for each arriving job.
///
/// Selectors are consulted in global arrival order with a load
/// snapshot per node; the cluster simulator updates the snapshot after
/// every assignment, so a burst of simultaneous arrivals spreads out
/// rather than dog-piling the momentarily-least-loaded node. The
/// contract is deterministic: the same arrival sequence and loads must
/// yield the same node, which is what keeps the merged cluster
/// timeline independent of simulation thread count.
///
/// The chunked optimistic simulator (`hrp-cluster::multinode`) leans
/// on the same property: it *speculates* node load snapshots a chunk
/// ahead and, because a selector is a pure function of `(gpus, work,
/// loads)` plus its own state, replaying the selector against the
/// reconciled loads reproduces the barrier-mode decision sequence
/// exactly. Selectors must not read wall clocks, thread ids, or other
/// ambient state — only the arguments and `self`.
pub trait NodeSelector {
    /// Human-readable name (CLI/report label).
    fn name(&self) -> &'static str;

    /// Choose a node for a job needing `gpus` GPUs and roughly `work`
    /// seconds. `loads` has one entry per node, indexed by node id;
    /// the returned id must be a valid index into it.
    fn select(&mut self, gpus: usize, work: f64, loads: &[NodeLoad]) -> usize;
}

/// The bitmask of nodes that can ever host a `gpus`-wide job — the
/// valid-action mask of the placement decision, shared between the
/// placement environment and [`PolicySelector`] so training and
/// deployment mask identically.
#[must_use]
pub fn placement_fit_mask(loads: &[NodeLoad], gpus: usize) -> u64 {
    loads
        .iter()
        .enumerate()
        .filter(|(_, l)| l.total_gpus >= gpus)
        .fold(0u64, |m, (i, _)| m | (1 << i))
}

/// Encode a placement decision state: for every node, its normalised
/// outstanding work and free-GPU share, then the arriving job's GPU
/// share and normalised work. The layout (`2·N + 2` floats) is shared
/// between the placement environment's `state_into` and
/// [`PolicySelector`], so a policy trained on simulated episodes sees
/// live loads in the same coordinates.
pub fn encode_placement_state(loads: &[NodeLoad], gpus: usize, work: f64, out: &mut Vec<f32>) {
    out.clear();
    let scale = 1.0 + loads.iter().map(|l| l.outstanding).fold(0.0, f64::max);
    let mut total = 0usize;
    for l in loads {
        out.push((l.outstanding / scale) as f32);
        out.push(l.free_gpus as f32 / l.total_gpus.max(1) as f32);
        total += l.total_gpus;
    }
    out.push(gpus as f32 / total.max(1) as f32);
    out.push((work / scale) as f32);
}

/// A [`NodeSelector`] driven by a frozen [`GreedyPolicy`]: live node
/// loads are encoded exactly as the placement environment encodes its
/// simulated ones, and the policy picks greedily — deterministic, ties
/// to the lowest node id, with the encode scratch reused so a
/// steady-state decision performs **zero heap allocations**.
///
/// Earlier versions carried a seeded `SmallRng` for the ε-greedy
/// interface even though ε = 0 never consults it; the dead RNG state
/// leaked into every clone and checkpoint of the selector. Placement
/// decisions are unchanged by its removal (the digest-invariance
/// regression tests in `hrp-cluster` pin this).
pub struct PolicySelector<P> {
    policy: P,
    scratch: Vec<f32>,
}

impl<P: GreedyPolicy> PolicySelector<P> {
    /// Wrap a frozen policy (e.g. a [`crate::rl::Learner`] snapshot
    /// trained on `hrp-cluster::place::ClusterEnv` episodes).
    #[must_use]
    pub fn new(policy: P) -> Self {
        Self {
            policy,
            scratch: Vec::new(),
        }
    }
}

impl<P: GreedyPolicy> NodeSelector for PolicySelector<P> {
    fn name(&self) -> &'static str {
        "policy"
    }

    fn select(&mut self, gpus: usize, work: f64, loads: &[NodeLoad]) -> usize {
        let mask = placement_fit_mask(loads, gpus);
        assert!(mask != 0, "no node can host a {gpus}-GPU job");
        encode_placement_state(loads, gpus, work, &mut self.scratch);
        self.policy.greedy(&self.scratch, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(outstanding: &[f64]) -> Vec<NodeLoad> {
        outstanding
            .iter()
            .enumerate()
            .map(|(node, &o)| NodeLoad {
                node,
                total_gpus: 2,
                free_gpus: 2,
                queued_jobs: 0,
                outstanding: o,
            })
            .collect()
    }

    #[test]
    fn encoding_has_two_floats_per_node_plus_job_features() {
        let l = loads(&[4.0, 0.0, 9.0]);
        let mut out = Vec::new();
        encode_placement_state(&l, 1, 5.0, &mut out);
        assert_eq!(out.len(), 2 * 3 + 2);
        // Outstanding is normalised by 1 + the maximum.
        assert!((out[0] - 0.4).abs() < 1e-6);
        assert!((out[4] - 0.9).abs() < 1e-6);
        // Free share is per-node.
        assert!((out[1] - 1.0).abs() < 1e-6);
        // Job features: GPU share of the cluster, normalised work.
        assert!((out[6] - 1.0 / 6.0).abs() < 1e-6);
        assert!((out[7] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn per_gpu_outstanding_divides_by_capacity() {
        let l = NodeLoad {
            node: 0,
            total_gpus: 4,
            free_gpus: 1,
            queued_jobs: 3,
            outstanding: 10.0,
        };
        assert!((l.per_gpu_outstanding() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fit_mask_drops_too_small_nodes() {
        let mut l = loads(&[0.0, 0.0, 0.0]);
        l[1].total_gpus = 1;
        assert_eq!(placement_fit_mask(&l, 2), 0b101);
        assert_eq!(placement_fit_mask(&l, 1), 0b111);
        assert_eq!(placement_fit_mask(&l, 3), 0);
    }

    /// A fixed policy: always the highest valid bit.
    struct TopBit;
    impl GreedyPolicy for TopBit {
        fn greedy(&mut self, _s: &[f32], mask: u64) -> usize {
            (63 - mask.leading_zeros()) as usize
        }
    }

    #[test]
    fn policy_selector_respects_the_fit_mask() {
        let mut sel = PolicySelector::new(TopBit);
        let loads: Vec<NodeLoad> = (0..3)
            .map(|node| NodeLoad {
                node,
                total_gpus: if node == 2 { 1 } else { 4 },
                free_gpus: 1,
                queued_jobs: 0,
                outstanding: 0.0,
            })
            .collect();
        // Node 2 cannot ever host a 2-GPU job, so the top *valid* bit
        // is node 1.
        assert_eq!(sel.select(2, 5.0, &loads), 1);
        assert_eq!(sel.select(1, 5.0, &loads), 2);
        assert_eq!(sel.name(), "policy");
    }

    #[test]
    #[should_panic(expected = "no node can host")]
    fn policy_selector_rejects_unplaceable_jobs() {
        let mut sel = PolicySelector::new(TopBit);
        let _ = sel.select(4, 5.0, &loads(&[0.0, 0.0]));
    }
}
