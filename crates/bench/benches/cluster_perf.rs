//! Criterion benchmarks for the multi-node cluster simulator: chunked
//! optimistic vs per-instant barrier vs serial execution on the same
//! seeded traces (all three produce bit-identical timelines — the
//! benches time pure engine overhead), the persistent-pool epoch
//! fan-out vs the legacy per-epoch spawn (the ROADMAP
//! threads=4-trailing-threads=1 regression was per-epoch spawn/join
//! overhead), the placement-training environment's episode replay,
//! and the single-node event loop underneath everything.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hrp_bench::cluster::node_dispatcher;
use hrp_cluster::multinode::{staggered_trace, MultiNodeSim};
use hrp_cluster::place::{PlacementAgent, PlacementConfig};
use hrp_cluster::sim::ClusterSim;
use hrp_cluster::trace::{generate, TraceConfig, TraceKind};
use hrp_cluster::{FcfsBackfill, SelectorKind};
use hrp_core::par::WorkerPool;
use hrp_gpusim::GpuArch;
use hrp_workloads::Suite;
use std::sync::Arc;

const JOBS: usize = 48;

fn bench_single_node_loop(c: &mut Criterion) {
    let suite = Suite::paper_suite(&GpuArch::a100());
    let jobs = staggered_trace(&suite, JOBS);
    c.bench_function("cluster_single_node_drain48", |b| {
        b.iter(|| {
            let mut d = node_dispatcher();
            black_box(ClusterSim::new(2).run(&suite, black_box(jobs.clone()), &mut d))
        })
    });
}

/// Serial vs pooled vs per-epoch-spawn fan-out: same timeline, three
/// wall-clocks. The bursty trace maximises the epoch count, which is
/// exactly where per-epoch spawn/join hurts.
fn bench_fanout_modes(c: &mut Criterion) {
    let suite = Suite::paper_suite(&GpuArch::a100());
    let jobs = generate(&suite, &TraceConfig::new(TraceKind::Bursty, JOBS, 42));
    let run = |sim: &MultiNodeSim| {
        let mut sel = SelectorKind::LeastLoaded.build();
        sim.run(&suite, jobs.clone(), sel.as_mut(), |_| node_dispatcher())
    };
    c.bench_function("cluster_4nodes_serial_drain48", |b| {
        let sim = MultiNodeSim::new(4, 2);
        b.iter(|| black_box(run(&sim)))
    });
    c.bench_function("cluster_4nodes_pool4_drain48", |b| {
        // The pool is created once and shared across iterations — the
        // steady-state cost of `with_threads(4)` inside a long-lived
        // process.
        let sim = MultiNodeSim::new(4, 2).with_pool(Arc::new(WorkerPool::new(4)));
        b.iter(|| black_box(run(&sim)))
    });
    c.bench_function("cluster_4nodes_spawn4_drain48", |b| {
        // The legacy path: a fresh scoped spawn per arrival instant.
        let sim = MultiNodeSim::new(4, 2).with_threads(4).with_epoch_spawn();
        b.iter(|| black_box(run(&sim)))
    });
}

/// Chunked optimistic vs barrier vs serial on the same seeded traces,
/// all pooled modes sharing ONE worker pool (so the comparison times
/// the engines, not pool construction). The 100k-job bursty case is
/// the scale the chunked engine is for: thousands of arrival
/// instants, so a per-instant barrier pays thousands of fan-out
/// rounds where chunking pays one per chunk.
fn bench_chunked_vs_barrier(c: &mut Criterion) {
    let suite = Suite::paper_suite(&GpuArch::a100());
    let pool = Arc::new(WorkerPool::new(4));
    let run = |sim: &MultiNodeSim, jobs: &[hrp_cluster::ClusterJob]| {
        let mut sel = SelectorKind::LeastLoaded.build();
        sim.run(&suite, jobs.to_vec(), sel.as_mut(), |_| FcfsBackfill::new())
    };
    // Moderate scale: every mode is cheap enough for steady sampling.
    let jobs = generate(
        &suite,
        &TraceConfig::new(TraceKind::Bursty, 2_000, 42).max_gpus(2),
    );
    c.bench_function("cluster_8nodes_serial_fcfs2k", |b| {
        let sim = MultiNodeSim::new(8, 2).with_threads(1);
        b.iter(|| black_box(run(&sim, &jobs)))
    });
    c.bench_function("cluster_8nodes_barrier4_fcfs2k", |b| {
        let sim = MultiNodeSim::new(8, 2).with_pool(Arc::clone(&pool));
        b.iter(|| black_box(run(&sim, &jobs)))
    });
    c.bench_function("cluster_8nodes_chunked4_fcfs2k", |b| {
        let sim = MultiNodeSim::new(8, 2)
            .with_pool(Arc::clone(&pool))
            .with_chunk_width(64.0);
        b.iter(|| black_box(run(&sim, &jobs)))
    });
    // The ≥100k-job case: thousands of distinct arrival instants,
    // which is where the per-instant barrier's fan-out count explodes
    // and the chunked engine's one-round-per-chunk pays off.
    let big = generate(
        &suite,
        &TraceConfig::new(TraceKind::Bursty, 100_000, 42).max_gpus(2),
    );
    c.bench_function("cluster_8nodes_barrier4_fcfs100k", |b| {
        let sim = MultiNodeSim::new(8, 2).with_pool(Arc::clone(&pool));
        b.iter(|| black_box(run(&sim, &big)))
    });
    c.bench_function("cluster_8nodes_chunked4_fcfs100k", |b| {
        let sim = MultiNodeSim::new(8, 2)
            .with_pool(Arc::clone(&pool))
            .with_chunk_width(64.0);
        b.iter(|| black_box(run(&sim, &big)))
    });
}

/// One greedy placement episode through the simulation-backed env —
/// the per-episode cost the placement-training rollout workers pay.
fn bench_placement_episode(c: &mut Criterion) {
    let suite = Suite::paper_suite(&GpuArch::a100());
    let cfg = PlacementConfig::quick();
    let trace = generate(&suite, &cfg.trace.clone().max_gpus(cfg.gpus_per_node));
    let agent = PlacementAgent::untrained(cfg);
    c.bench_function("placement_greedy_episode32", |b| {
        b.iter(|| black_box(agent.greedy_placements(&suite, black_box(&trace))))
    });
}

criterion_group!(
    benches,
    bench_single_node_loop,
    bench_fanout_modes,
    bench_chunked_vs_barrier,
    bench_placement_episode
);
criterion_main!(benches);
