//! Offline training (paper Fig. 7, left half).
//!
//! The paper trains the dueling double DQN by repeatedly co-running job
//! mixes drawn from 20 random queues of the 18 *seen* programs, updating
//! the network from the measured rewards. Training happens once per
//! system; the frozen agent is then used online (ε = 0).

use crate::actions::ActionCatalog;
use crate::env::{CoScheduleEnv, EnvConfig, JOB_FEATURES};
use crate::problem::ScheduleDecision;
use hrp_gpusim::engine::EngineConfig;
use hrp_nn::net::Head;
use hrp_nn::replay::Transition;
use hrp_nn::{DqnAgent, DqnConfig, EpsilonSchedule};
use hrp_profile::{FeatureScaler, Profiler, ProfileRepository};
use hrp_workloads::{JobQueue, QueueGenerator, Suite};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Window size `W`.
    pub w: usize,
    /// Concurrency cap `Cmax`.
    pub cmax: usize,
    /// Training episodes (each drains one window).
    pub episodes: usize,
    /// Number of random training queues (paper: 20).
    pub n_queues: usize,
    /// Master seed.
    pub seed: u64,
    /// Hidden-layer widths (paper: 512/256/128).
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Target-network sync period (learning steps).
    pub target_sync_every: u64,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Double-DQN targets (ablation knob).
    pub double: bool,
    /// Dueling head (ablation knob).
    pub dueling: bool,
    /// Profile measurement noise level.
    pub profile_noise: f64,
    /// Intermediate-reward weight.
    pub ri_weight: f64,
    /// Final-reward weight.
    pub rf_weight: f64,
    /// Engine overheads during training runs.
    pub engine: EngineConfig,
    /// Final ε of the exploration schedule (paper: 0.01).
    pub eps_end: f64,
}

impl TrainConfig {
    /// The paper's setup (Table VI): W = 12, Cmax = 4, 512/256/128.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            w: 12,
            cmax: 4,
            episodes: 600,
            n_queues: 20,
            seed: 42,
            hidden: vec![512, 256, 128],
            gamma: 0.95,
            lr: 5e-4,
            batch_size: 32,
            target_sync_every: 100,
            buffer_capacity: 20_000,
            double: true,
            dueling: true,
            profile_noise: 0.03,
            // The r_i formula structurally favours large exclusive
            // allocations (SmAllocRatio = 1 for solo runs), so the
            // measured-throughput reward r_f carries the signal and r_i
            // is a small shaping term; the paper does not publish its
            // scaling, see DESIGN.md. (r_i still fully controls job→slot
            // binding regardless of this weight.)
            ri_weight: 0.05,
            rf_weight: 0.05,
            engine: EngineConfig::default(),
            eps_end: 0.01,
        }
    }

    /// A small configuration for tests and quick smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            w: 6,
            cmax: 4,
            episodes: 250,
            n_queues: 6,
            hidden: vec![64, 32],
            lr: 1e-3,
            ..Self::paper()
        }
    }

    fn env_config(&self) -> EnvConfig {
        EnvConfig {
            w: self.w,
            cmax: self.cmax,
            ri_weight: self.ri_weight,
            rf_weight: self.rf_weight,
            engine: self.engine.clone(),
        }
    }
}

/// A trained agent plus everything needed to deploy it online.
pub struct TrainedAgent {
    agent: DqnAgent,
    /// Feature scaler fitted on the profile repository.
    pub scaler: FeatureScaler,
    /// The 29-entry action catalog.
    pub catalog: ActionCatalog,
    /// The profile repository (pre-populated with the suite).
    pub repo: ProfileRepository,
    cfg: TrainConfig,
}

impl TrainedAgent {
    /// Greedy (ε = 0) rollout over a queue — the online decision making.
    ///
    /// # Panics
    /// Panics if the queue exceeds the training window size or contains
    /// unprofiled jobs.
    #[must_use]
    pub fn greedy_decision(
        &self,
        suite: &Suite,
        queue: &JobQueue,
        engine: &EngineConfig,
    ) -> ScheduleDecision {
        let mut env_cfg = self.cfg.env_config();
        env_cfg.engine = engine.clone();
        let mut env = CoScheduleEnv::new(suite, queue, &self.repo, &self.scaler, &self.catalog, env_cfg);
        while !env.done() {
            let action = self.agent.greedy_action(&env.state(), env.valid_mask());
            env.step(action);
        }
        env.into_decision()
    }

    /// The training configuration used.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The underlying DQN (weight export, inspection).
    #[must_use]
    pub fn dqn(&self) -> &DqnAgent {
        &self.agent
    }
}

/// Training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Episodes run.
    pub episodes: usize,
    /// Environment steps taken.
    pub total_steps: u64,
    /// Mean episode return over the first 10% of episodes.
    pub early_return: f64,
    /// Mean episode return over the last 10% of episodes.
    pub late_return: f64,
    /// Mean measured throughput gain (r_f) per group in the last 10%.
    pub late_rf: f64,
}

/// Run offline training.
#[must_use]
pub fn train(suite: &Suite, cfg: TrainConfig) -> (TrainedAgent, TrainReport) {
    let arch = suite.arch().clone();
    let profiler = Profiler::new(arch, cfg.profile_noise, cfg.seed);
    let repo = ProfileRepository::for_suite(suite, &profiler);
    let scaler = FeatureScaler::fit(&repo);
    let catalog = ActionCatalog::paper_29();

    let mut gen = QueueGenerator::new(cfg.seed);
    let queues = gen.training_queues(suite, cfg.n_queues, cfg.w);

    let dqn_cfg = DqnConfig {
        state_dim: cfg.w * JOB_FEATURES,
        n_actions: catalog.len(),
        hidden: cfg.hidden.clone(),
        gamma: cfg.gamma,
        lr: cfg.lr,
        batch_size: cfg.batch_size,
        target_sync_every: cfg.target_sync_every,
        buffer_capacity: cfg.buffer_capacity,
        huber_delta: 1.0,
        double: cfg.double,
        head: if cfg.dueling { Head::Dueling } else { Head::Plain },
        seed: cfg.seed,
    };
    let mut agent = DqnAgent::new(dqn_cfg);

    // ε decays over the first ~half of the expected steps, leaving the
    // rest for near-greedy fine-tuning.
    let expected_steps = (cfg.episodes * cfg.w / 2).max(1) as u64;
    let eps = EpsilonSchedule {
        start: 1.0,
        end: cfg.eps_end,
        decay_steps: expected_steps / 2,
    };

    let mut step_count = 0u64;
    let mut returns = Vec::with_capacity(cfg.episodes);
    let mut rf_hist = Vec::new();
    for ep in 0..cfg.episodes {
        let queue = &queues[ep % queues.len()];
        let mut env = CoScheduleEnv::new(suite, queue, &repo, &scaler, &catalog, cfg.env_config());
        let mut ep_return = 0.0;
        while !env.done() {
            let state = env.state();
            let mask = env.valid_mask();
            let action = agent.select_action(&state, mask, eps.value(step_count));
            let out = env.step(action);
            ep_return += out.reward;
            rf_hist.push((ep, out.rf));
            agent.remember(Transition {
                state,
                action,
                reward: out.reward as f32,
                next_state: env.state(),
                done: out.done,
                next_mask: env.valid_mask(),
            });
            // Two gradient steps per environment step: co-runs are
            // expensive to "measure", gradients are cheap.
            agent.learn();
            agent.learn();
            step_count += 1;
        }
        returns.push(ep_return);
    }

    let tenth = (cfg.episodes / 10).max(1);
    let early_return = returns.iter().take(tenth).sum::<f64>() / tenth as f64;
    let late_return = returns.iter().rev().take(tenth).sum::<f64>() / tenth as f64;
    let late_cutoff = cfg.episodes.saturating_sub(tenth);
    let late_rfs: Vec<f64> = rf_hist
        .iter()
        .filter(|(ep, _)| *ep >= late_cutoff)
        .map(|(_, rf)| *rf)
        .collect();
    let late_rf = if late_rfs.is_empty() {
        0.0
    } else {
        late_rfs.iter().sum::<f64>() / late_rfs.len() as f64
    };

    let report = TrainReport {
        episodes: cfg.episodes,
        total_steps: step_count,
        early_return,
        late_return,
        late_rf,
    };
    (
        TrainedAgent {
            agent,
            scaler,
            catalog,
            repo,
            cfg,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_gpusim::GpuArch;

    #[test]
    fn quick_training_runs_and_improves() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        let (trained, report) = train(&suite, TrainConfig::quick());
        assert_eq!(report.episodes, 250);
        assert!(report.total_steps > 0);
        // The agent should discover co-scheduling: late returns at least
        // match early (random) returns, and late groups gain throughput.
        assert!(
            report.late_return >= report.early_return * 0.8,
            "training regressed: early {} late {}",
            report.early_return,
            report.late_return
        );
        assert!(trained.dqn().learn_steps() > 0);
    }

    #[test]
    fn greedy_decision_is_valid_and_deterministic() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        let (trained, _) = train(&suite, TrainConfig::quick());
        let mut gen = QueueGenerator::new(123);
        let queue = gen.category_queue(
            &suite,
            "test",
            6,
            hrp_workloads::MixCategory::Balanced,
            false,
        );
        let engine = EngineConfig::default();
        let d1 = trained.greedy_decision(&suite, &queue, &engine);
        let d2 = trained.greedy_decision(&suite, &queue, &engine);
        assert_eq!(d1, d2, "greedy rollout must be deterministic");
        d1.validate(&queue, 4, false).unwrap();
    }

    #[test]
    fn training_is_reproducible() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        let mut cfg = TrainConfig::quick();
        cfg.episodes = 10;
        let (_, r1) = train(&suite, cfg.clone());
        let (_, r2) = train(&suite, cfg);
        assert_eq!(r1, r2);
    }
}
