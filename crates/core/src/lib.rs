//! # hrp-core — RL-based co-scheduling and hierarchical GPU partitioning
//!
//! This crate implements the paper's primary contribution (§IV): given a
//! window of `W` queued jobs and a concurrency cap `Cmax`, jointly choose
//!
//! 1. the **co-scheduling groups** `LJS = {JS1, JS2, …}` (a partition of
//!    the window), and
//! 2. per group the **hierarchical resource partitioning** `Ri`
//!    (MIG GPU-instances → compute instances → MPS shares),
//!
//! minimising total co-run time subject to the constraints of §IV-A
//! (each group must beat time sharing; `|JSi| ≤ Cmax`; groups are
//! mutually exclusive and collectively exhaustive).
//!
//! The solution mirrors the paper's architecture (Fig. 7):
//!
//! * [`mod@rl`] — the generic interface the training pipeline is
//!   written against: the [`rl::Env`] × [`rl::Learner`] traits, policy
//!   snapshots, and greedy rollout;
//! * [`mod@env`] — the flat RL environment: window state encoding
//!   `W × (f + 5)`, a 29-entry action catalog ([`actions`]), and the
//!   two-part reward of Table VI ([`reward`]);
//! * [`mod@hierarchy`] — the paper's two-level formulation: a MIG-level
//!   (physical) action followed by an MPS-level (logical) action, same
//!   reachable decisions as the flat catalog;
//! * [`mod@train`] — offline training of a dueling double DQN over randomly
//!   generated job queues, run as a parallel rollout/learner pipeline
//!   ([`train::train_env`], generic over the env/learner pair) with
//!   optional double-buffered (overlapped) rounds and sharded
//!   replay — bit-identical for any worker count (see
//!   `ARCHITECTURE.md`, "Determinism contract");
//! * [`mod@experiment`] — the fluent [`experiment::Experiment`] spec
//!   unifying the config surface, with spec+weights checkpoints that
//!   reload to identical greedy decisions;
//! * [`mod@cluster_env`] — the cluster tier above all of this (§VI):
//!   the [`cluster_env::NodeSelector`] placement contract the
//!   multi-node simulator consults, the shared placement state
//!   encoding, and [`cluster_env::PolicySelector`] (the trained-policy
//!   bridge; the placement environment itself lives in
//!   `hrp-cluster::place`, where it replays episodes through the real
//!   multi-node simulator);
//! * [`par`] — the bounded parallelism primitives
//!   ([`par::parallel_map`] and the persistent [`par::WorkerPool`])
//!   the rollout, evaluation, cluster window-drain, and multi-node
//!   epoch fan-outs share;
//! * [`policies`] — the five compared methods of §V-A4: `TimeSharing`,
//!   `MigOnly (C=2)`, `MpsOnly`, `MigMpsDefault`, and `MigMpsRl`;
//! * [`exhaustive`] — the set-partition dynamic program used to give the
//!   baselines their *optimal* job-set selections (the paper searches
//!   those exhaustively);
//! * [`metrics`] — throughput vs time sharing, per-application slowdown
//!   (Fig. 11) and fairness (Fig. 12);
//! * [`online`] — the online phase of Fig. 7: profile-miss handling and
//!   window-by-window scheduling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actions;
pub mod cluster_env;
pub mod env;
pub mod exhaustive;
pub mod experiment;
pub mod hierarchy;
pub mod metrics;
pub mod online;
pub mod par;
pub mod policies;
pub mod predict;
pub mod problem;
pub mod reward;
pub mod rl;
pub mod train;

pub use actions::ActionCatalog;
pub use cluster_env::{NodeLoad, NodeSelector, PolicySelector};
pub use env::{CoScheduleEnv, CoScheduleEnvFactory, EnvConfig};
pub use experiment::{CheckpointError, Experiment, TrainedExperiment};
pub use hierarchy::{HierarchicalCatalog, HierarchicalEnv, HierarchicalEnvFactory};
pub use metrics::QueueMetrics;
pub use policies::{
    MigMpsDefault, MigMpsRl, MigOnly, MpsOnly, Policy, ScheduleContext, TimeSharing,
};
pub use problem::{ScheduleDecision, ScheduledGroup};
pub use rl::{Env, EnvFactory, EnvKind, GreedyPolicy, Learner, SnapshotPolicy};
pub use train::{train, train_env, PipelineConfig, TrainConfig, TrainedAgent};
