//! Golden regression for the multi-node cluster schedule, in the style
//! of `tests/golden_train.rs`: the 4-node round-robin drain of the
//! deterministic 24-job staggered trace is pinned by its merged-event
//! digest and bit-exact aggregate metrics, so any refactor of
//! `sim.rs`/`multinode.rs` that moves a single event is caught. The
//! least-loaded schedule is pinned alongside it (a change to the load
//! snapshot or tie-breaking shows up there first).
//!
//! Golden values captured from the initial `multinode` implementation
//! at `MultiNodeSim::new(4, 2)`, `staggered_trace(suite, 24)`,
//! `CoSchedulingDispatcher::new(MpsOnly, 4, 4)` per node. Both thread
//! modes (serial and `HRP_TEST_THREADS`-wide) must reproduce them.

mod common;
use common::test_threads;

use hrp::cluster::multinode::{staggered_trace, MultiNodeReport, MultiNodeSim};
use hrp::cluster::trace::{generate, TraceConfig, TraceKind};
use hrp::cluster::{CoSchedulingDispatcher, FcfsBackfill, SelectorKind};
use hrp::prelude::*;

struct Golden {
    selector: SelectorKind,
    digest: u64,
    events: usize,
    makespan: u64,
    avg_wait: u64,
    utilization: u64,
    placements: usize,
    node_jobs: [usize; 4],
}

/// Captured from the initial implementation (see module docs).
fn golden_runs() -> Vec<Golden> {
    vec![
        Golden {
            selector: SelectorKind::RoundRobin,
            digest: 0x6c98_cadf_c573_5ef4,
            events: 60,
            makespan: 0x4067_2000_0000_0000,    // 185.0
            avg_wait: 0x4032_3555_5555_5555,    // 18.208333…
            utilization: 0x3fe0_9c21_3476_2d87, // 0.519058…
            placements: 18,
            node_jobs: [6, 6, 6, 6],
        },
        Golden {
            selector: SelectorKind::LeastLoaded,
            digest: 0xe617_3422_d4ac_2489,
            events: 58,
            makespan: 0x4060_c5d9_37c0_9cbe,    // 134.182765…
            avg_wait: 0x402e_e000_0000_0000,    // 15.4375
            utilization: 0x3fe6_5696_b34f_5871, // 0.698069…
            placements: 17,
            node_jobs: [7, 4, 6, 7],
        },
    ]
}

fn run(selector: SelectorKind, threads: usize) -> MultiNodeReport {
    let suite = Suite::paper_suite(&GpuArch::a100());
    let mut sel = selector.build();
    MultiNodeSim::new(4, 2).with_threads(threads).run(
        &suite,
        staggered_trace(&suite, 24),
        sel.as_mut(),
        |_| CoSchedulingDispatcher::new(MpsOnly, 4, 4),
    )
}

#[test]
fn four_node_schedules_match_the_golden_pin_for_any_thread_count() {
    for golden in golden_runs() {
        for threads in [1usize, test_threads()] {
            let report = run(golden.selector, threads);
            let mode = format!("selector={} threads={}", golden.selector.name(), threads);
            assert_eq!(
                report.timeline.digest(),
                golden.digest,
                "timeline digest drifted ({mode})"
            );
            assert_eq!(report.timeline.len(), golden.events, "event count ({mode})");
            assert_eq!(
                report.aggregate.makespan.to_bits(),
                golden.makespan,
                "makespan drifted ({mode}): {}",
                report.aggregate.makespan
            );
            assert_eq!(
                report.aggregate.avg_wait.to_bits(),
                golden.avg_wait,
                "avg_wait drifted ({mode}): {}",
                report.aggregate.avg_wait
            );
            assert_eq!(
                report.aggregate.utilization.to_bits(),
                golden.utilization,
                "utilization drifted ({mode}): {}",
                report.aggregate.utilization
            );
            assert_eq!(report.aggregate.placements, golden.placements, "{mode}");
            let jobs: Vec<usize> = report.per_node.iter().map(|n| n.jobs).collect();
            assert_eq!(jobs, golden.node_jobs, "placement spread drifted ({mode})");
            assert_eq!(report.completed_jobs(), 24, "{mode}");
        }
    }
}

/// Golden pin for one *large* skewed trace (5000 jobs, 8 FCFS nodes,
/// least-loaded placement): the scale regime the chunked optimistic
/// engine targets. Captured from the barrier engine at the point the
/// chunked engine landed; barrier mode must keep reproducing it, and
/// the chunked engine must reproduce it bit-for-bit at every tested
/// chunk width while doing strictly fewer synchronization rounds.
#[test]
fn large_skewed_trace_matches_the_golden_pin_in_both_engines() {
    const DIGEST: u64 = 0x841a_9d30_d786_e4b9;
    const EVENTS: usize = 15_000;
    const MAKESPAN: u64 = 0x40d4_3ada_cfb3_7d18; // 20715.418927…
    const AVG_WAIT: u64 = 0x4078_1a3e_c938_cac8; // 385.640328…
    let suite = Suite::paper_suite(&GpuArch::a100());
    let jobs = generate(
        &suite,
        &TraceConfig::new(TraceKind::Skewed, 5000, 42).max_gpus(2),
    );
    let run = |width: Option<f64>| {
        let mut sel = SelectorKind::LeastLoaded.build();
        let mut sim = MultiNodeSim::new(8, 2).with_threads(test_threads());
        if let Some(w) = width {
            sim = sim.with_chunk_width(w);
        }
        sim.run(&suite, jobs.clone(), sel.as_mut(), |_| FcfsBackfill::new())
    };
    let barrier = run(None);
    assert_eq!(barrier.timeline.digest(), DIGEST, "barrier digest drifted");
    assert_eq!(barrier.timeline.len(), EVENTS);
    assert_eq!(barrier.aggregate.makespan.to_bits(), MAKESPAN);
    assert_eq!(barrier.aggregate.avg_wait.to_bits(), AVG_WAIT);
    assert_eq!(barrier.aggregate.placements, 5000);
    for width in [7.0, 64.0, 1e5] {
        let chunked = run(Some(width));
        assert_eq!(
            chunked.timeline.digest(),
            DIGEST,
            "chunked digest drifted at width {width}"
        );
        assert_eq!(chunked.aggregate, barrier.aggregate, "width {width}");
        assert_eq!(chunked.per_node, barrier.per_node, "width {width}");
        assert!(
            chunked.sync.sync_rounds < barrier.sync.sync_rounds,
            "width {width}: {} vs {} rounds",
            chunked.sync.sync_rounds,
            barrier.sync.sync_rounds
        );
    }
}

#[test]
fn one_node_round_robin_reproduces_the_single_node_schedule() {
    // The acceptance pin behind `repro --nodes 1`: the multi-node path
    // at N = 1 *is* the single-node simulator, bit for bit.
    let suite = Suite::paper_suite(&GpuArch::a100());
    let jobs = staggered_trace(&suite, 24);
    let mut sel = SelectorKind::RoundRobin.build();
    let multi = MultiNodeSim::new(1, 2).with_threads(test_threads()).run(
        &suite,
        jobs.clone(),
        sel.as_mut(),
        |_| CoSchedulingDispatcher::new(MpsOnly, 4, 4),
    );
    let mut single = CoSchedulingDispatcher::new(MpsOnly, 4, 4);
    let (base, events) = hrp::cluster::ClusterSim::new(2).run_traced(&suite, jobs, &mut single);
    assert_eq!(multi.timeline.events, events);
    assert_eq!(multi.aggregate.makespan.to_bits(), base.makespan.to_bits());
    assert_eq!(multi.aggregate.avg_wait.to_bits(), base.avg_wait.to_bits());
    assert_eq!(
        multi.aggregate.utilization.to_bits(),
        base.utilization.to_bits()
    );
    assert_eq!(multi.aggregate.placements, base.placements);
}
