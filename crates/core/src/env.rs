//! The co-scheduling RL environment (paper §IV-C).
//!
//! * **State** — the whole job window: for each of the `W` slots,
//!   `f + 5 = 17` floats (12 min–max-scaled Table III counters, a pending
//!   flag, the CI/MI/US one-hot from the offline characterisation, and
//!   the normalised solo duration). Scheduled slots are zeroed, so the
//!   state visibly shrinks as the episode progresses — matching the
//!   paper's input layer of `W × (f + 5)` neurons.
//! * **Action** — one of the 29 catalog entries (a concurrency plus a
//!   partition template). Since `A = 29` cannot encode *which* jobs join
//!   the group, jobs are bound to the chosen template's slots by the
//!   profile-driven binder: candidate job sets (longest pending jobs per
//!   class pattern, plus the max-`Σr_i` set) are scored with the
//!   [`CoRunPredictor`] — predictions computable from stored profiles
//!   alone, exactly what the paper collects profiles for — and the
//!   best-predicted set takes the slots. The intermediate reward `r_i`
//!   (which the paper defines to "evaluate the resource allocation for a
//!   selected job … before launching") is then paid for the binding.
//! * **Reward** — `w_i · mean(r_i) + w_f · r_f` where `r_f` is the
//!   measured throughput gain of the launched group (Table VI).
//! * **Episode** — ends when the window is drained; the accumulated
//!   groups form the decision `(LJS, LR)`.

use crate::actions::ActionCatalog;
use crate::predict::CoRunPredictor;
use crate::problem::{evaluate_group, ScheduleDecision};
use crate::reward::{final_reward, intermediate_reward, WindowStats};
use crate::rl::{Env, EnvFactory};
use hrp_gpusim::arch::GpuArch;
use hrp_gpusim::engine::EngineConfig;
use hrp_gpusim::CompiledPartition;
use hrp_profile::{FeatureScaler, JobProfile, ProfileRepository};
use hrp_workloads::{Class, JobQueue, Suite};

/// Per-job feature width: 12 scaled counters + pending + 3-way class
/// one-hot + normalised duration.
pub const JOB_FEATURES: usize = 17;

/// Environment configuration.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Window size `W`.
    pub w: usize,
    /// Concurrency cap `Cmax`.
    pub cmax: usize,
    /// Weight of the intermediate reward in the step reward.
    pub ri_weight: f64,
    /// Weight of the final (throughput) reward in the step reward.
    pub rf_weight: f64,
    /// Engine overheads used when "running" groups.
    pub engine: EngineConfig,
}

impl EnvConfig {
    /// The paper's evaluation defaults (`W = 12`, `Cmax = 4`).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            w: 12,
            cmax: 4,
            ri_weight: 0.05,
            rf_weight: 0.05,
            engine: EngineConfig::default(),
        }
    }
}

/// Outcome of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Combined reward.
    pub reward: f64,
    /// Whether the window is drained.
    pub done: bool,
    /// Measured final reward `r_f` of the launched group.
    pub rf: f64,
    /// Mean intermediate reward of the bound jobs.
    pub ri_mean: f64,
}

/// The environment. Borrow-cheap: construct one per episode.
pub struct CoScheduleEnv<'a> {
    suite: &'a Suite,
    queue: &'a JobQueue,
    catalog: &'a ActionCatalog,
    cfg: EnvConfig,
    arch: GpuArch,
    profiles: Vec<JobProfile>,
    features: Vec<[f64; 12]>,
    classes: Vec<Class>,
    stats: WindowStats,
    max_solo: f64,
    pending: Vec<bool>,
    decision: ScheduleDecision,
    compiled: Vec<CompiledPartition>,
    predictor: CoRunPredictor,
}

impl<'a> CoScheduleEnv<'a> {
    /// Build an environment over a queue whose jobs are all profiled.
    ///
    /// # Panics
    /// Panics if a job has no profile in the repository (the online layer
    /// filters unprofiled jobs out before scheduling, per Fig. 7).
    #[must_use]
    pub fn new(
        suite: &'a Suite,
        queue: &'a JobQueue,
        repo: &ProfileRepository,
        scaler: &FeatureScaler,
        catalog: &'a ActionCatalog,
        cfg: EnvConfig,
    ) -> Self {
        assert!(queue.len() <= cfg.w, "queue larger than the window");
        let arch = suite.arch().clone();
        let profiles: Vec<JobProfile> = queue
            .jobs
            .iter()
            .map(|j| {
                repo.get(&j.name)
                    .unwrap_or_else(|| panic!("job '{}' has no profile", j.name))
            })
            .collect();
        let features: Vec<[f64; 12]> = profiles.iter().map(|p| scaler.transform(p)).collect();
        let classes: Vec<Class> = queue
            .jobs
            .iter()
            .map(|j| suite.by_index(j.bench).class)
            .collect();
        let stats = WindowStats::from_profiles(profiles.iter());
        let max_solo = profiles
            .iter()
            .map(|p| p.solo_time)
            .fold(f64::MIN_POSITIVE, f64::max);
        let compiled = catalog
            .schemes()
            .iter()
            .map(|s| s.compile(&arch).expect("catalog schemes compile"))
            .collect();
        let names: Vec<&str> = queue.jobs.iter().map(|j| j.name.as_str()).collect();
        let predictor = CoRunPredictor::new(&names, &profiles, &arch, cfg.engine.clone());
        Self {
            suite,
            queue,
            catalog,
            cfg,
            arch,
            profiles,
            features,
            classes,
            stats,
            max_solo,
            pending: vec![true; queue.len()],
            decision: ScheduleDecision::default(),
            compiled,
            predictor,
        }
    }

    /// Length of the state vector: `W × 17`.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.cfg.w * JOB_FEATURES
    }

    /// Number of still-pending jobs.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.iter().filter(|&&p| p).count()
    }

    /// Whether the episode is over.
    #[must_use]
    pub fn done(&self) -> bool {
        self.pending_count() == 0
    }

    /// Encode the current state into a caller-provided buffer (resized
    /// to `W × 17`), avoiding a fresh allocation per step — rollout
    /// workers reuse one buffer per episode.
    pub fn state_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.state_dim(), 0.0);
        for (i, job) in self.queue.jobs.iter().enumerate() {
            if !self.pending[job.id] {
                continue; // scheduled slots stay zero
            }
            let base = i * JOB_FEATURES;
            for (k, &f) in self.features[i].iter().enumerate() {
                out[base + k] = f as f32;
            }
            out[base + 12] = 1.0; // pending flag
            let class_off = match self.classes[i] {
                Class::Ci => 13,
                Class::Mi => 14,
                Class::Us => 15,
            };
            out[base + class_off] = 1.0;
            out[base + 16] = (self.profiles[i].solo_time / self.max_solo) as f32;
        }
    }

    /// Encode the current state into a fresh vector.
    #[must_use]
    pub fn state(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.state_into(&mut out);
        out
    }

    /// Bitmask of currently valid actions.
    #[must_use]
    pub fn valid_mask(&self) -> u64 {
        self.catalog.valid_mask(self.pending_count(), self.cfg.cmax)
    }

    /// Candidate job subsets for a group of size `c`: for every class
    /// pattern (multiset of CI/MI/US of size `c`) take the longest
    /// pending jobs of each class; plus the max-`Σr_i` subset.
    fn candidate_subsets(&self, c: usize, ri: &[Vec<f64>], pending: &[usize]) -> Vec<Vec<usize>> {
        use hrp_workloads::Class;
        // Pending jobs per class, longest first.
        let mut by_class: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut order: Vec<usize> = pending.to_vec();
        order.sort_by(|&a, &b| {
            self.profiles[b]
                .solo_time
                .total_cmp(&self.profiles[a].solo_time)
        });
        for &j in &order {
            let k = match self.classes[j] {
                Class::Ci => 0,
                Class::Mi => 1,
                Class::Us => 2,
            };
            by_class[k].push(j);
        }
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        // Enumerate class-count triples (n_ci, n_mi, n_us) summing to c.
        for n_ci in 0..=c {
            for n_mi in 0..=(c - n_ci) {
                let n_us = c - n_ci - n_mi;
                if n_ci > by_class[0].len() || n_mi > by_class[1].len() || n_us > by_class[2].len()
                {
                    continue;
                }
                let counts = [n_ci, n_mi, n_us];
                // Variant A: the longest pending jobs of each class.
                let mut subset = Vec::with_capacity(c);
                subset.extend_from_slice(&by_class[0][..n_ci]);
                subset.extend_from_slice(&by_class[1][..n_mi]);
                subset.extend_from_slice(&by_class[2][..n_us]);
                subset.sort_unstable();
                if !candidates.contains(&subset) {
                    candidates.push(subset.clone());
                }
                // Variant B: duration-matched — anchor on the largest
                // class's longest jobs and pick the other classes'
                // members closest to the anchor duration (mismatched
                // durations waste the static allocation after the short
                // partner finishes).
                let anchor_class = (0..3).max_by_key(|&k| counts[k]).unwrap_or(0);
                if counts[anchor_class] > 0 {
                    let anchor: f64 = by_class[anchor_class][..counts[anchor_class]]
                        .iter()
                        .map(|&j| self.profiles[j].solo_time)
                        .sum::<f64>()
                        / counts[anchor_class] as f64;
                    let mut matched = Vec::with_capacity(c);
                    for k in 0..3 {
                        if counts[k] == 0 {
                            continue;
                        }
                        if k == anchor_class {
                            matched.extend_from_slice(&by_class[k][..counts[k]]);
                        } else {
                            let mut pool = by_class[k].clone();
                            pool.sort_by(|&a, &b| {
                                (self.profiles[a].solo_time - anchor)
                                    .abs()
                                    .total_cmp(&(self.profiles[b].solo_time - anchor).abs())
                            });
                            matched.extend_from_slice(&pool[..counts[k]]);
                        }
                    }
                    matched.sort_unstable();
                    if !candidates.contains(&matched) {
                        candidates.push(matched);
                    }
                }
            }
        }
        // The pure max-Σr_i subset (greedy by best slot value) as the
        // paper-literal fallback candidate.
        let mut scored: Vec<(f64, usize)> = pending
            .iter()
            .enumerate()
            .map(|(p, &j)| {
                let best = ri[p].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (best, j)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut greedy: Vec<usize> = scored[..c].iter().map(|&(_, j)| j).collect();
        greedy.sort_unstable();
        if !candidates.contains(&greedy) {
            candidates.push(greedy);
        }
        candidates
    }

    /// Bind jobs to the slots of `part`: choose the candidate subset with
    /// the best *predicted* time saving, then the best predicted slot
    /// assignment; `Σ r_i` of the chosen binding is returned for the
    /// shaping reward. Returns `(job_ids, slot_assignment, ri_sum)`.
    fn bind_jobs(&self, part: &CompiledPartition) -> (Vec<usize>, Vec<usize>, f64) {
        let c = part.slots.len();
        let pending: Vec<usize> = (0..self.queue.len()).filter(|&j| self.pending[j]).collect();
        assert!(pending.len() >= c, "action requires more jobs than pending");

        // r_i matrix: pending-job × slot (needed for the fallback
        // candidate and the shaping reward).
        let ri: Vec<Vec<f64>> = pending
            .iter()
            .map(|&j| {
                (0..c)
                    .map(|s| {
                        let slot = &part.slots[s];
                        let mem = part.domains[slot.domain].bandwidth_frac;
                        intermediate_reward(&self.profiles[j], &self.stats, slot.compute_frac, mem)
                    })
                    .collect()
            })
            .collect();

        let mut best: Option<(f64, Vec<usize>, Vec<usize>)> = None;
        for subset in self.candidate_subsets(c, &ri, &pending) {
            let (makespan, assignment) = self.predictor.predict_best_assignment(&subset, part);
            let saved = self.predictor.predicted_solo_sum(&subset) - makespan;
            if best.as_ref().is_none_or(|(s, _, _)| saved > *s) {
                best = Some((saved, subset, assignment));
            }
        }
        let (_, job_ids, assignment) = best.expect("at least one candidate");

        let ri_sum: f64 = job_ids
            .iter()
            .zip(assignment.iter())
            .map(|(&j, &slot)| {
                let p = pending.iter().position(|&x| x == j).expect("job pending");
                ri[p][slot]
            })
            .sum();
        (job_ids, assignment, ri_sum)
    }

    /// Evaluate an action **without taking it**: returns the group's
    /// measured `(rf, corun_time, solo_time)` under the current binding.
    /// Used by the oracle-greedy reference policy and for debugging; the
    /// RL agent itself never peeks (it must learn the mapping).
    ///
    /// # Panics
    /// Panics if the action is invalid for the current mask.
    #[must_use]
    pub fn peek_action(&self, action: usize) -> (f64, f64, f64) {
        assert!(
            self.valid_mask() & (1 << action) != 0,
            "action {action} invalid with {} pending",
            self.pending_count()
        );
        let part = &self.compiled[action];
        let (job_ids, assignment, _) = self.bind_jobs(part);
        let scheme = self.catalog.scheme(action);
        let group = evaluate_group(
            self.suite,
            self.queue,
            &job_ids,
            scheme,
            &assignment,
            &self.arch,
            &self.cfg.engine,
        );
        let rf = if group.concurrency() > 1 {
            final_reward(group.solo_time, group.corun_time)
        } else {
            0.0
        };
        (rf, group.corun_time, group.solo_time)
    }

    /// Take an action: bind jobs, launch the group on the simulator,
    /// collect the reward.
    ///
    /// # Panics
    /// Panics if the action is invalid for the current mask.
    pub fn step(&mut self, action: usize) -> StepResult {
        assert!(
            self.valid_mask() & (1 << action) != 0,
            "action {action} invalid with {} pending",
            self.pending_count()
        );
        let part = &self.compiled[action];
        let (job_ids, assignment, ri_sum) = self.bind_jobs(part);
        let scheme = self.catalog.scheme(action);
        let group = evaluate_group(
            self.suite,
            self.queue,
            &job_ids,
            scheme,
            &assignment,
            &self.arch,
            &self.cfg.engine,
        );
        let rf = if group.concurrency() > 1 {
            final_reward(group.solo_time, group.corun_time)
        } else {
            0.0
        };
        let ri_mean = ri_sum / job_ids.len() as f64;
        for &j in &job_ids {
            self.pending[j] = false;
        }
        self.decision.groups.push(group);
        StepResult {
            reward: self.cfg.ri_weight * ri_mean + self.cfg.rf_weight * rf,
            done: self.done(),
            rf,
            ri_mean,
        }
    }

    /// Return to the initial state: every job pending again, the
    /// accumulated decision discarded. The profiles, predictor, and
    /// compiled partitions are episode-invariant and stay as built.
    pub fn reset(&mut self) {
        self.pending.iter_mut().for_each(|p| *p = true);
        self.decision = ScheduleDecision::default();
    }

    /// Consume the environment, returning the accumulated decision.
    #[must_use]
    pub fn into_decision(self) -> ScheduleDecision {
        self.decision
    }

    /// The decision accumulated so far.
    #[must_use]
    pub fn decision(&self) -> &ScheduleDecision {
        &self.decision
    }

    /// The environment configuration.
    #[must_use]
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }
}

impl Env for CoScheduleEnv<'_> {
    type Decision = ScheduleDecision;

    fn state_dim(&self) -> usize {
        CoScheduleEnv::state_dim(self)
    }

    fn n_actions(&self) -> usize {
        self.catalog.len()
    }

    fn done(&self) -> bool {
        CoScheduleEnv::done(self)
    }

    fn state_into(&self, out: &mut Vec<f32>) {
        CoScheduleEnv::state_into(self, out);
    }

    fn valid_mask(&self) -> u64 {
        CoScheduleEnv::valid_mask(self)
    }

    fn step(&mut self, action: usize) -> StepResult {
        CoScheduleEnv::step(self, action)
    }

    fn reset(&mut self) {
        CoScheduleEnv::reset(self);
    }

    fn into_decision(self) -> ScheduleDecision {
        CoScheduleEnv::into_decision(self)
    }
}

/// Stamps out [`CoScheduleEnv`] episodes: the episode-invariant pieces
/// (suite, profiles, scaler, catalog, env config) bundled behind the
/// [`EnvFactory`] interface the generic pipeline consumes.
pub struct CoScheduleEnvFactory<'a> {
    suite: &'a Suite,
    repo: &'a ProfileRepository,
    scaler: &'a FeatureScaler,
    catalog: &'a ActionCatalog,
    cfg: EnvConfig,
}

impl<'a> CoScheduleEnvFactory<'a> {
    /// Bundle the episode-invariant state.
    #[must_use]
    pub fn new(
        suite: &'a Suite,
        repo: &'a ProfileRepository,
        scaler: &'a FeatureScaler,
        catalog: &'a ActionCatalog,
        cfg: EnvConfig,
    ) -> Self {
        Self {
            suite,
            repo,
            scaler,
            catalog,
            cfg,
        }
    }
}

impl EnvFactory for CoScheduleEnvFactory<'_> {
    type Ctx = JobQueue;

    type Env<'e>
        = CoScheduleEnv<'e>
    where
        Self: 'e;

    fn make<'e>(&'e self, queue: &'e JobQueue) -> CoScheduleEnv<'e> {
        CoScheduleEnv::new(
            self.suite,
            queue,
            self.repo,
            self.scaler,
            self.catalog,
            self.cfg.clone(),
        )
    }

    fn state_dim(&self) -> usize {
        self.cfg.w * JOB_FEATURES
    }

    fn n_actions(&self) -> usize {
        self.catalog.len()
    }

    fn episode_steps_hint(&self) -> usize {
        self.cfg.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_profile::Profiler;

    fn fixture() -> (
        Suite,
        JobQueue,
        ProfileRepository,
        FeatureScaler,
        ActionCatalog,
    ) {
        let arch = GpuArch::a100();
        let suite = Suite::paper_suite(&arch);
        let queue = JobQueue::from_names(
            "t",
            &[
                "lavaMD",
                "stream",
                "kmeans",
                "pathfinder",
                "bt_solver_A",
                "lud_A",
            ],
            &suite,
        );
        let profiler = Profiler::new(arch, 0.02, 5);
        let repo = ProfileRepository::for_suite(&suite, &profiler);
        let scaler = FeatureScaler::fit(&repo);
        (suite, queue, repo, scaler, ActionCatalog::paper_29())
    }

    fn cfg() -> EnvConfig {
        EnvConfig {
            w: 6,
            cmax: 4,
            ..EnvConfig::paper()
        }
    }

    #[test]
    fn state_has_expected_shape_and_flags() {
        let (suite, queue, repo, scaler, catalog) = fixture();
        let env = CoScheduleEnv::new(&suite, &queue, &repo, &scaler, &catalog, cfg());
        let s = env.state();
        assert_eq!(s.len(), 6 * JOB_FEATURES);
        // Every job pending: flag set in each block.
        for i in 0..6 {
            assert_eq!(s[i * JOB_FEATURES + 12], 1.0);
            // Exactly one class bit.
            let class_bits: f32 = s[i * JOB_FEATURES + 13..i * JOB_FEATURES + 16].iter().sum();
            assert_eq!(class_bits, 1.0);
        }
        // Longest job (bt_solver_A, 45 s) has duration feature 1.0.
        let bt_block = 4 * JOB_FEATURES;
        assert!((s[bt_block + 16] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scheduled_jobs_zero_out() {
        let (suite, queue, repo, scaler, catalog) = fixture();
        let mut env = CoScheduleEnv::new(&suite, &queue, &repo, &scaler, &catalog, cfg());
        let r = env.step(0); // C = 1 action
        assert!(!r.done);
        let s = env.state();
        let zeroed: usize = (0..6).filter(|i| s[i * JOB_FEATURES + 12] == 0.0).count();
        assert_eq!(zeroed, 1);
        assert_eq!(env.pending_count(), 5);
    }

    #[test]
    fn episode_drains_window() {
        let (suite, queue, repo, scaler, catalog) = fixture();
        let mut env = CoScheduleEnv::new(&suite, &queue, &repo, &scaler, &catalog, cfg());
        let mut steps = 0;
        while !env.done() {
            // Always pick the first valid action (C=1) — guaranteed legal.
            let mask = env.valid_mask();
            let action = (0..catalog.len()).find(|a| mask & (1 << a) != 0).unwrap();
            env.step(action);
            steps += 1;
            assert!(steps <= 6);
        }
        let d = env.into_decision();
        d.validate(&queue, 4, false).unwrap();
        assert_eq!(d.groups.len(), 6);
    }

    #[test]
    fn mask_shrinks_as_jobs_drain() {
        let (suite, queue, repo, scaler, catalog) = fixture();
        let mut env = CoScheduleEnv::new(&suite, &queue, &repo, &scaler, &catalog, cfg());
        assert_eq!(env.valid_mask().count_ones(), 29);
        // Schedule a 4-way group → 2 pending → only C ≤ 2 actions.
        let four_way = (0..catalog.len())
            .find(|&a| catalog.concurrency(a) == 4)
            .unwrap();
        env.step(four_way);
        assert_eq!(env.pending_count(), 2);
        assert_eq!(env.valid_mask().count_ones(), 8);
    }

    #[test]
    fn binding_matches_complementary_jobs_to_slots() {
        // Action: 80/20 MPS split. The CI job (high Compute ratio, long)
        // should take the big compute slot over the MI job.
        let (suite, queue, repo, scaler, catalog) = fixture();
        let mut env = CoScheduleEnv::new(&suite, &queue, &repo, &scaler, &catalog, cfg());
        // Find the (0.2, 0.8) MPS action.
        let a37 = catalog
            .schemes()
            .iter()
            .position(|s| {
                matches!(s, hrp_gpusim::PartitionScheme::MpsOnly { shares }
                    if shares.len() == 2 && (shares[0] - 0.3).abs() < 1e-9)
            })
            .unwrap();
        let r = env.step(a37);
        let group = &env.decision().groups[0];
        // The group contains two jobs; the one on slot 1 (0.8 compute)
        // must have the higher Compute(SM)% profile.
        let hi = group.job_ids[1];
        let lo = group.job_ids[0];
        let sm = |j: usize| repo.get(&queue.jobs[j].name).unwrap().compute_pct();
        assert!(
            sm(hi) * env.profiles[hi].solo_time >= sm(lo) * env.profiles[lo].solo_time * 0.5,
            "binding should favour compute-heavy long jobs on big slots"
        );
        assert!(r.ri_mean > 0.0);
    }

    #[test]
    fn rewards_reflect_group_quality() {
        // A window whose two longest jobs are a complementary CI/MI pair:
        // the r_i binder (duration-squared dominant) picks them, the CI
        // job lands on the big share, and the measured r_f is positive.
        let (suite, _, repo, scaler, catalog) = fixture();
        let queue = JobQueue::from_names(
            "t2",
            &[
                "bt_solver_A",
                "sp_solver_B",
                "stream",
                "kmeans",
                "pathfinder",
                "dwt2d",
            ],
            &suite,
        );
        let mut env = CoScheduleEnv::new(&suite, &queue, &repo, &scaler, &catalog, cfg());
        let a37 = catalog
            .schemes()
            .iter()
            .position(|s| {
                matches!(s, hrp_gpusim::PartitionScheme::MpsOnly { shares }
                    if shares.len() == 2 && (shares[0] - 0.3).abs() < 1e-9)
            })
            .unwrap();
        let r = env.step(a37);
        assert!(r.rf > 0.0, "co-run should beat time sharing: rf = {}", r.rf);
        assert!(r.reward > 0.0);
        // And the CI job must be on the 0.8 slot.
        let group = &env.decision().groups[0];
        let bt = queue
            .jobs
            .iter()
            .position(|j| j.name == "bt_solver_A")
            .unwrap();
        let pos = group.job_ids.iter().position(|&j| j == bt).unwrap();
        assert_eq!(group.assignment[pos], 1, "CI job takes the big share");
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_action_panics() {
        let (suite, queue, repo, scaler, catalog) = fixture();
        let small = JobQueue {
            label: "one".into(),
            jobs: vec![queue.jobs[0].clone()],
        };
        let mut env = CoScheduleEnv::new(&suite, &small, &repo, &scaler, &catalog, cfg());
        // Any C=2 action must panic with one pending job.
        let two = (0..catalog.len())
            .find(|&a| catalog.concurrency(a) == 2)
            .unwrap();
        env.step(two);
    }
}
