//! The optimization problem of §IV-A: decision types, group evaluation,
//! and constraint validation.

use hrp_gpusim::arch::GpuArch;
use hrp_gpusim::engine::{simulate_corun, EngineConfig};
use hrp_gpusim::{AppModel, PartitionScheme};
use hrp_workloads::{JobQueue, Suite};
use serde::{Deserialize, Serialize};

/// One co-scheduled group: a job set `JSi` with its resource setup `Ri`
/// and the measured outcome of running it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledGroup {
    /// Queue job ids in this group.
    pub job_ids: Vec<usize>,
    /// The resource partitioning `Ri`.
    pub scheme: PartitionScheme,
    /// `assignment[k]` = slot index of `job_ids[k]` in the compiled
    /// scheme.
    pub assignment: Vec<usize>,
    /// Measured co-run makespan `CoRunTime(JSi, Ri)` in seconds.
    pub corun_time: f64,
    /// `SoloRunTime(JSi)`: sum of the members' solo times.
    pub solo_time: f64,
    /// Per-member completion time from group start (`CoRunAppTime`),
    /// aligned with `job_ids`.
    pub app_times: Vec<f64>,
}

impl ScheduledGroup {
    /// Group concurrency `Ci = |JSi|`.
    #[must_use]
    pub fn concurrency(&self) -> usize {
        self.job_ids.len()
    }

    /// Does this group satisfy the first §IV-A constraint
    /// (`CoRunTime ≤ SoloRunTime`)?
    #[must_use]
    pub fn beats_time_sharing(&self) -> bool {
        self.corun_time <= self.solo_time * (1.0 + 1e-9)
    }
}

/// A complete decision: `LJS` + `LR` + measured outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ScheduleDecision {
    /// The groups, in execution order.
    pub groups: Vec<ScheduledGroup>,
}

impl ScheduleDecision {
    /// Total time to drain the window: `Σ CoRunTime(JSi, Ri)` (groups run
    /// back to back — the GPU is reconfigured between groups).
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.groups.iter().map(|g| g.corun_time).sum()
    }

    /// Total solo (time-sharing) time of all scheduled jobs.
    #[must_use]
    pub fn total_solo_time(&self) -> f64 {
        self.groups.iter().map(|g| g.solo_time).sum()
    }

    /// Validate the §IV-A constraints against the source queue:
    /// mutually-exclusive collectively-exhaustive job sets, `Ci ≤ Cmax`,
    /// and (optionally strict) the per-group time-sharing constraint.
    pub fn validate(
        &self,
        queue: &JobQueue,
        cmax: usize,
        require_beats_time_sharing: bool,
    ) -> Result<(), String> {
        let mut seen = vec![false; queue.len()];
        for (gi, g) in self.groups.iter().enumerate() {
            if g.job_ids.is_empty() {
                return Err(format!("group {gi} is empty"));
            }
            if g.concurrency() > cmax {
                return Err(format!(
                    "group {gi} has concurrency {} > Cmax {cmax}",
                    g.concurrency()
                ));
            }
            if g.job_ids.len() != g.assignment.len() || g.job_ids.len() != g.app_times.len() {
                return Err(format!("group {gi} has inconsistent member arrays"));
            }
            for &j in &g.job_ids {
                if j >= queue.len() {
                    return Err(format!("group {gi} references job {j} outside the window"));
                }
                if seen[j] {
                    return Err(format!("job {j} scheduled twice"));
                }
                seen[j] = true;
            }
            if require_beats_time_sharing && g.concurrency() > 1 && !g.beats_time_sharing() {
                return Err(format!(
                    "group {gi} violates CoRunTime ≤ SoloRunTime ({} > {})",
                    g.corun_time, g.solo_time
                ));
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("job {missing} never scheduled"));
        }
        Ok(())
    }
}

/// Run one candidate group on the simulator ("the hardware") and record
/// the outcome.
///
/// # Panics
/// Panics if the scheme does not compile or the assignment is invalid —
/// callers construct both from validated action spaces.
#[must_use]
pub fn evaluate_group(
    suite: &Suite,
    queue: &JobQueue,
    job_ids: &[usize],
    scheme: &PartitionScheme,
    assignment: &[usize],
    arch: &GpuArch,
    engine: &EngineConfig,
) -> ScheduledGroup {
    let part = scheme.compile(arch).expect("scheme must compile");
    let apps: Vec<&AppModel> = job_ids
        .iter()
        .map(|&j| &suite.by_index(queue.jobs[j].bench).app)
        .collect();
    let result = simulate_corun(&apps, assignment, &part, engine);
    let solo_time = apps.iter().map(|a| a.solo_time).sum();
    ScheduledGroup {
        job_ids: job_ids.to_vec(),
        scheme: scheme.clone(),
        assignment: assignment.to_vec(),
        corun_time: result.makespan,
        solo_time,
        app_times: result.finish_times,
    }
}

/// Evaluate a group trying **all slot permutations**, returning the best
/// (lowest makespan). Used by the exhaustive baselines; `C ≤ 4` keeps
/// this at ≤ 24 simulations.
#[must_use]
pub fn evaluate_group_best_assignment(
    suite: &Suite,
    queue: &JobQueue,
    job_ids: &[usize],
    scheme: &PartitionScheme,
    arch: &GpuArch,
    engine: &EngineConfig,
) -> ScheduledGroup {
    let c = job_ids.len();
    let mut best: Option<ScheduledGroup> = None;
    let mut perm: Vec<usize> = (0..c).collect();
    permute(&mut perm, 0, &mut |assignment| {
        let g = evaluate_group(suite, queue, job_ids, scheme, assignment, arch, engine);
        if best.as_ref().is_none_or(|b| g.corun_time < b.corun_time) {
            best = Some(g);
        }
    });
    best.expect("at least one permutation")
}

/// Heap's-algorithm permutation visitor.
fn permute(xs: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        visit(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, visit);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Suite, JobQueue, GpuArch, EngineConfig) {
        let arch = GpuArch::a100();
        let suite = Suite::paper_suite(&arch);
        // bt_solver_A (CI, 45 s) and sp_solver_B (MI, 55 s) are a
        // duration-matched complementary pair.
        let queue = JobQueue::from_names(
            "t",
            &["bt_solver_A", "sp_solver_B", "kmeans", "pathfinder"],
            &suite,
        );
        (suite, queue, arch, EngineConfig::default())
    }

    #[test]
    fn evaluate_solo_group_is_solo_time() {
        let (suite, queue, arch, eng) = setup();
        let g = evaluate_group(
            &suite,
            &queue,
            &[0],
            &PartitionScheme::exclusive(),
            &[0],
            &arch,
            &eng,
        );
        let bt = suite.get("bt_solver_A").unwrap().app.solo_time;
        assert!((g.corun_time - bt).abs() < 1e-6);
        assert!((g.solo_time - bt).abs() < 1e-9);
        assert!(g.beats_time_sharing());
    }

    #[test]
    fn complementary_pair_beats_time_sharing() {
        let (suite, queue, arch, eng) = setup();
        // bt_solver_A (CI) on the big share, sp_solver_B (MI) on the
        // small one.
        let g = evaluate_group(
            &suite,
            &queue,
            &[0, 1],
            &PartitionScheme::mps_only(vec![0.7, 0.3]),
            &[0, 1],
            &arch,
            &eng,
        );
        assert!(
            g.beats_time_sharing(),
            "corun {} vs solo {}",
            g.corun_time,
            g.solo_time
        );
    }

    #[test]
    fn best_assignment_picks_the_right_orientation() {
        let (suite, queue, arch, eng) = setup();
        let scheme = PartitionScheme::mps_only(vec![0.2, 0.8]);
        let best = evaluate_group_best_assignment(&suite, &queue, &[0, 1], &scheme, &arch, &eng);
        // bt_solver_A (job 0, CI) must land on the 0.8 slot (slot 1).
        let ci_pos = best.job_ids.iter().position(|&j| j == 0).unwrap();
        assert_eq!(best.assignment[ci_pos], 1);
        // And must be at least as good as the wrong orientation.
        let wrong = evaluate_group(&suite, &queue, &[0, 1], &scheme, &[1, 0], &arch, &eng);
        assert!(best.corun_time <= wrong.corun_time + 1e-9);
    }

    #[test]
    fn validation_catches_all_violations() {
        let (suite, queue, arch, eng) = setup();
        let solo = |j: usize| {
            evaluate_group(
                &suite,
                &queue,
                &[j],
                &PartitionScheme::exclusive(),
                &[0],
                &arch,
                &eng,
            )
        };
        // Complete, valid decision.
        let full = ScheduleDecision {
            groups: (0..4).map(solo).collect(),
        };
        full.validate(&queue, 4, true).unwrap();

        // Missing job.
        let missing = ScheduleDecision {
            groups: (0..3).map(solo).collect(),
        };
        assert!(missing.validate(&queue, 4, true).is_err());

        // Duplicate job.
        let dup = ScheduleDecision {
            groups: vec![solo(0), solo(0), solo(1), solo(2), solo(3)],
        };
        assert!(dup.validate(&queue, 4, true).is_err());

        // Concurrency above Cmax.
        let big = evaluate_group(
            &suite,
            &queue,
            &[0, 1, 2],
            &PartitionScheme::mps_only(vec![0.34, 0.33, 0.33]),
            &[0, 1, 2],
            &arch,
            &eng,
        );
        let over = ScheduleDecision {
            groups: vec![big, solo(3)],
        };
        assert!(over.validate(&queue, 2, false).is_err());
        // With the cap raised the structure is fine (the equal 3-way MPS
        // split may not beat time sharing, so skip that check here).
        assert!(over.validate(&queue, 3, false).is_ok());
    }

    #[test]
    fn totals_accumulate() {
        let (suite, queue, arch, eng) = setup();
        let d = ScheduleDecision {
            groups: (0..4)
                .map(|j| {
                    evaluate_group(
                        &suite,
                        &queue,
                        &[j],
                        &PartitionScheme::exclusive(),
                        &[0],
                        &arch,
                        &eng,
                    )
                })
                .collect(),
        };
        assert!((d.total_time() - queue.total_solo_time(&suite)).abs() < 1e-6);
        assert!((d.total_solo_time() - queue.total_solo_time(&suite)).abs() < 1e-9);
    }
}
