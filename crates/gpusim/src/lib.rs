//! # hrp-gpusim — an A100-class GPU co-scheduling simulator
//!
//! This crate is the hardware substrate for the CLUSTER'23 paper
//! *"Hierarchical Resource Partitioning on Modern GPUs: A Reinforcement
//! Learning Approach"* (Saroliya et al.). The paper's evaluation runs on a
//! real NVIDIA A100 with MIG (Multi-Instance GPU) and MPS (Multi-Process
//! Service); this crate replaces that hardware with a faithful analytic
//! model so the full scheduling/RL stack can run anywhere.
//!
//! The simulator models the four mechanisms that drive every observation in
//! the paper (its Figs. 3–5):
//!
//! 1. **Amdahl-limited compute scaling** — each application has a parallel
//!    fraction; giving it a fraction of the SMs yields sub-linear speedup
//!    ([`app::AppModel::amdahl_speedup`]).
//! 2. **Bandwidth-proportional memory scaling** — memory-intensive
//!    applications are limited by the DRAM bandwidth of their memory
//!    domain; bandwidth within a domain is shared max–min fairly
//!    ([`perf`]).
//! 3. **Shared-memory interference** — co-runners in the *same* memory
//!    domain slow each other down beyond pure bandwidth sharing (LLC
//!    thrashing, row-buffer conflicts). MIG isolation removes this; MPS
//!    cannot ([`perf::corun_rates`]).
//! 4. **Completion-triggered redistribution** — when a co-located job
//!    finishes, the survivors speed up; the discrete-event engine
//!    ([`engine`]) re-solves the rate model at every completion.
//!
//! # Modules
//!
//! * [`arch`] — GPU geometry (GPCs, SMs, HBM slices); defaults to A100.
//! * [`mig`] — GPU-Instance / Compute-Instance profiles, placement rules,
//!   and enumeration of valid MIG configurations.
//! * [`mps`] — MPS active-thread-percentage shares.
//! * [`partition`] — the hierarchical partition tree (GI → CI → MPS
//!   client) and its compilation into flat resource slots.
//! * [`notation`] — parser/printer for the paper's bracket notation,
//!   e.g. `[{0.375},0.5m]+[(0.1)+(0.9){0.5},0.5m]`.
//! * [`app`] — the application kernel model (parallel fraction, memory
//!   demand, interference sensitivity, solo runtime).
//! * [`perf`] — the instantaneous co-run rate model.
//! * [`engine`] — the discrete-event co-run simulator.
//! * [`counters`] — synthesis of the Nsight-Compute-style hardware
//!   counters of the paper's Table III.
//! * [`rng`] — a tiny deterministic SplitMix64 generator (keeps this crate
//!   dependency-free).
//!
//! # Quick example
//!
//! ```
//! use hrp_gpusim::prelude::*;
//!
//! // A compute-bound and a memory-bound app...
//! let ci = AppModel::builder("ci_app").parallel_fraction(0.97)
//!     .compute_demand(0.9).mem_demand(0.25).solo_time(10.0).build();
//! let mi = AppModel::builder("mi_app").parallel_fraction(0.95)
//!     .compute_demand(0.3).mem_demand(0.95)
//!     .interference_sensitivity(0.25).solo_time(10.0).build();
//!
//! // ...co-run under a 70/30 MPS split of the whole GPU.
//! let scheme = PartitionScheme::mps_only(vec![0.7, 0.3]);
//! let part = scheme.compile(&GpuArch::a100()).unwrap();
//! let res = simulate_corun(&[&ci, &mi], &[0, 1], &part, &EngineConfig::default());
//!
//! // Co-running beats time sharing for this complementary mix.
//! assert!(res.makespan < ci.solo_time + mi.solo_time);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod arch;
pub mod counters;
pub mod engine;
pub mod error;
pub mod mig;
pub mod mps;
pub mod notation;
pub mod partition;
pub mod perf;
pub mod rng;

/// Convenient glob import of the most commonly used types.
pub mod prelude {
    pub use crate::app::{AppModel, AppModelBuilder};
    pub use crate::arch::GpuArch;
    pub use crate::counters::CounterSet;
    pub use crate::engine::{simulate_corun, CoRunResult, EngineConfig};
    pub use crate::error::{PartitionError, SimError};
    pub use crate::mig::{GiProfile, MigConfig};
    pub use crate::partition::{
        CiSetup, CompiledPartition, GiSetup, MemDomain, PartitionScheme, Slot,
    };
    pub use crate::perf::corun_rates;
    pub use crate::rng::SplitMix64;
}

pub use prelude::*;
