//! The `repro bench-cluster` statistics harness: chunked optimistic
//! vs barrier vs serial execution of the same large seeded traces.
//!
//! Each configuration (trace kind × execution mode) is run `reps`
//! times on identical inputs; wall-clock times are summarised with
//! [`RunStats`] (mean, standard error, Student-t 95 % CI) and every
//! mode's merged-timeline digest is checked against serial barrier
//! mode before any number is reported — a speedup over a *different*
//! schedule would be meaningless. Alongside the timings the report
//! carries the logical [`SyncStats`] counters, which are the
//! machine-checkable form of the chunked mode's claim: strictly fewer
//! synchronization rounds than the per-instant barrier.
//!
//! The harness is deliberately dependency-free: JSON is assembled by
//! hand (`render_json`) and written to `BENCH_6.json` by the caller.

use crate::stats::RunStats;
use hrp_cluster::multinode::{MultiNodeSim, SyncStats};
use hrp_cluster::trace::{generate, TraceConfig, TraceKind};
use hrp_cluster::{ClusterJob, FcfsBackfill, SelectorKind};
use hrp_core::par::WorkerPool;
use hrp_workloads::Suite;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Nodes in every bench configuration.
pub const BENCH_NODES: usize = 8;
/// GPUs per node (matches the `repro cluster` evaluation default).
pub const BENCH_GPUS_PER_NODE: usize = 2;
/// Trace kinds the harness covers (≥ 3, as the report schema promises).
pub const BENCH_TRACE_KINDS: [TraceKind; 3] =
    [TraceKind::Bursty, TraceKind::Skewed, TraceKind::HeavyTail];

/// Sizing knobs of one `bench-cluster` invocation.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Shrink jobs/reps for smoke runs.
    pub quick: bool,
    /// Trace-generation seed.
    pub seed: u64,
    /// Repetitions per configuration (`0` = the mode default).
    pub reps: usize,
    /// Worker threads for the pooled modes (`0` = available
    /// parallelism).
    pub threads: usize,
    /// Chunk width of the chunked optimistic mode, in simulated
    /// seconds.
    pub chunk_width: f64,
}

impl BenchConfig {
    /// Jobs per trace: 20 000 for `--quick`, 120 000 otherwise.
    #[must_use]
    pub fn jobs(&self) -> usize {
        if self.quick {
            20_000
        } else {
            120_000
        }
    }

    /// Repetitions per configuration (explicit `reps`, else 3 quick /
    /// 5 full).
    #[must_use]
    pub fn effective_reps(&self) -> usize {
        if self.reps > 0 {
            self.reps
        } else if self.quick {
            3
        } else {
            5
        }
    }
}

/// One execution mode's summary on one trace.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// Mode label: `serial`, `barrier`, or `chunked`.
    pub mode: &'static str,
    /// Wall-clock per run, in milliseconds.
    pub time_ms: RunStats,
    /// Logical synchronization counters (identical across reps — they
    /// are a function of the schedule, not the clock).
    pub sync: SyncStats,
    /// Merged-timeline FNV digest (identical across modes by
    /// construction; asserted).
    pub digest: u64,
}

/// All modes on one trace kind.
#[derive(Debug, Clone)]
pub struct TraceBench {
    /// The trace kind.
    pub kind: TraceKind,
    /// `serial`, `barrier`, `chunked` — in that order.
    pub modes: Vec<ModeResult>,
}

/// The full harness output.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration that produced it.
    pub cfg: BenchConfig,
    /// Resolved worker-thread count of the pooled modes.
    pub pool_threads: usize,
    /// One entry per kind in [`BENCH_TRACE_KINDS`].
    pub traces: Vec<TraceBench>,
}

/// The node-local dispatcher of every bench run: FCFS + conservative
/// backfilling — O(queue) per decision, so a 100k-job trace times the
/// *engine*, not the dispatcher.
fn bench_trace(suite: &Suite, kind: TraceKind, cfg: &BenchConfig) -> Vec<ClusterJob> {
    generate(
        suite,
        &TraceConfig::new(kind, cfg.jobs(), cfg.seed).max_gpus(BENCH_GPUS_PER_NODE),
    )
}

/// Time one mode: `reps` identical runs, returning the timing summary
/// plus the (rep-invariant) counters and digest of the last run.
fn time_mode(
    suite: &Suite,
    jobs: &[ClusterJob],
    mode: &'static str,
    reps: usize,
    make_sim: &dyn Fn() -> MultiNodeSim,
) -> ModeResult {
    let mut samples = Vec::with_capacity(reps);
    let mut sync = SyncStats::default();
    let mut digest = 0u64;
    for _ in 0..reps {
        let mut selector = SelectorKind::LeastLoaded.build();
        let start = Instant::now();
        let report = make_sim().run(suite, jobs.to_vec(), selector.as_mut(), |_| {
            FcfsBackfill::new()
        });
        samples.push(start.elapsed().as_secs_f64() * 1e3);
        sync = report.sync;
        digest = report.timeline.digest();
    }
    ModeResult {
        mode,
        time_ms: RunStats::from_samples(&samples),
        sync,
        digest,
    }
}

/// Run the full harness: every trace kind × {serial, barrier,
/// chunked}, digests cross-checked, pooled modes sharing one
/// [`WorkerPool`].
///
/// # Panics
/// Panics if any mode's merged timeline diverges from serial barrier
/// mode (that would be an engine bug, not a measurement).
#[must_use]
pub fn run_bench(suite: &Suite, cfg: &BenchConfig) -> BenchReport {
    assert!(
        cfg.chunk_width.is_finite() && cfg.chunk_width > 0.0,
        "chunk width must be positive and finite"
    );
    let pool = Arc::new(WorkerPool::new(cfg.threads));
    let pool_threads = pool.threads();
    let reps = cfg.effective_reps();
    let traces = BENCH_TRACE_KINDS
        .iter()
        .map(|&kind| {
            let jobs = bench_trace(suite, kind, cfg);
            let serial = time_mode(suite, &jobs, "serial", reps, &|| {
                MultiNodeSim::new(BENCH_NODES, BENCH_GPUS_PER_NODE).with_threads(1)
            });
            let barrier = time_mode(suite, &jobs, "barrier", reps, &|| {
                MultiNodeSim::new(BENCH_NODES, BENCH_GPUS_PER_NODE).with_pool(Arc::clone(&pool))
            });
            let chunked = time_mode(suite, &jobs, "chunked", reps, &|| {
                MultiNodeSim::new(BENCH_NODES, BENCH_GPUS_PER_NODE)
                    .with_pool(Arc::clone(&pool))
                    .with_chunk_width(cfg.chunk_width)
            });
            assert_eq!(
                serial.digest,
                barrier.digest,
                "{}: barrier-mode digest diverged",
                kind.name()
            );
            assert_eq!(
                serial.digest,
                chunked.digest,
                "{}: chunked-mode digest diverged",
                kind.name()
            );
            assert!(
                chunked.sync.sync_rounds < barrier.sync.sync_rounds,
                "{}: chunked mode must do strictly fewer sync rounds \
                 ({} vs {})",
                kind.name(),
                chunked.sync.sync_rounds,
                barrier.sync.sync_rounds
            );
            TraceBench {
                kind,
                modes: vec![serial, barrier, chunked],
            }
        })
        .collect();
    BenchReport {
        cfg: *cfg,
        pool_threads,
        traces,
    }
}

/// A finite f64 as a JSON number (Rust's shortest-roundtrip rendering
/// is valid JSON for every finite value).
fn jnum(x: f64) -> String {
    debug_assert!(x.is_finite());
    format!("{x:?}")
}

/// Render the report as the `bench-cluster/v1` JSON document.
#[must_use]
pub fn render_json(report: &BenchReport) -> String {
    let cfg = &report.cfg;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench-cluster/v1\",");
    let _ = writeln!(out, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"nodes\": {BENCH_NODES},");
    let _ = writeln!(out, "  \"gpus_per_node\": {BENCH_GPUS_PER_NODE},");
    let _ = writeln!(out, "  \"jobs\": {},", cfg.jobs());
    let _ = writeln!(out, "  \"reps\": {},", cfg.effective_reps());
    let _ = writeln!(out, "  \"threads\": {},", report.pool_threads);
    let _ = writeln!(out, "  \"chunk_width\": {},", jnum(cfg.chunk_width));
    let _ = writeln!(out, "  \"rows\": [");
    let mut first = true;
    for t in &report.traces {
        for m in &t.modes {
            if !first {
                let _ = writeln!(out, ",");
            }
            first = false;
            let s = &m.time_ms;
            let _ = write!(
                out,
                "    {{\"trace\": \"{}\", \"mode\": \"{}\", \
                 \"mean_ms\": {}, \"std_err_ms\": {}, \
                 \"ci95_lo_ms\": {}, \"ci95_hi_ms\": {}, \
                 \"sync_rounds\": {}, \"node_advances\": {}, \
                 \"chunks\": {}, \"speculations\": {}, \
                 \"rollbacks\": {}, \"clean_commits\": {}, \
                 \"digest\": \"{:016x}\"}}",
                t.kind.name(),
                m.mode,
                jnum(s.mean),
                jnum(s.std_err),
                jnum(s.ci95_lo),
                jnum(s.ci95_hi),
                m.sync.sync_rounds,
                m.sync.node_advances,
                m.sync.chunks,
                m.sync.speculations,
                m.sync.rollbacks,
                m.sync.clean_commits,
                m.digest,
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_gpusim::GpuArch;

    /// A tiny config so the test stays fast; exercises the full path
    /// (all kinds, all modes, digest cross-check) at reduced scale.
    fn tiny_bench(suite: &Suite) -> BenchReport {
        let cfg = BenchConfig {
            quick: true,
            seed: 42,
            reps: 1,
            threads: 2,
            chunk_width: 64.0,
        };
        // Shrink further below BenchConfig::jobs() by bypassing
        // run_bench's trace sizing: run the real harness on its own
        // terms but with one rep (the sizing itself is covered by the
        // schema/CLI tests and CI's --quick run).
        let pool = Arc::new(WorkerPool::new(cfg.threads));
        let traces = BENCH_TRACE_KINDS
            .iter()
            .map(|&kind| {
                let jobs = generate(
                    suite,
                    &TraceConfig::new(kind, 400, cfg.seed).max_gpus(BENCH_GPUS_PER_NODE),
                );
                let serial = time_mode(suite, &jobs, "serial", 1, &|| {
                    MultiNodeSim::new(BENCH_NODES, BENCH_GPUS_PER_NODE).with_threads(1)
                });
                let chunked = time_mode(suite, &jobs, "chunked", 1, &|| {
                    MultiNodeSim::new(BENCH_NODES, BENCH_GPUS_PER_NODE)
                        .with_pool(Arc::clone(&pool))
                        .with_chunk_width(cfg.chunk_width)
                });
                assert_eq!(serial.digest, chunked.digest, "{}", kind.name());
                assert!(chunked.sync.sync_rounds < serial.sync.sync_rounds);
                TraceBench {
                    kind,
                    modes: vec![serial, chunked],
                }
            })
            .collect();
        BenchReport {
            cfg,
            pool_threads: pool.threads(),
            traces,
        }
    }

    #[test]
    fn harness_modes_agree_and_chunked_syncs_less() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        let report = tiny_bench(&suite);
        assert_eq!(report.traces.len(), 3);
        for t in &report.traces {
            assert_eq!(t.modes[0].digest, t.modes[1].digest);
        }
    }

    #[test]
    fn json_document_has_the_promised_fields() {
        let suite = Suite::paper_suite(&GpuArch::a100());
        let json = render_json(&tiny_bench(&suite));
        for field in [
            "\"schema\": \"bench-cluster/v1\"",
            "\"mean_ms\"",
            "\"std_err_ms\"",
            "\"ci95_lo_ms\"",
            "\"ci95_hi_ms\"",
            "\"sync_rounds\"",
            "\"rollbacks\"",
            "\"digest\"",
            "\"chunk_width\"",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        // Every trace kind appears.
        for kind in BENCH_TRACE_KINDS {
            assert!(json.contains(&format!("\"trace\": \"{}\"", kind.name())));
        }
        // Balanced braces/brackets — the document must parse.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn config_sizing() {
        let mut cfg = BenchConfig {
            quick: true,
            seed: 1,
            reps: 0,
            threads: 0,
            chunk_width: 64.0,
        };
        assert_eq!(cfg.jobs(), 20_000);
        assert_eq!(cfg.effective_reps(), 3);
        cfg.quick = false;
        assert_eq!(cfg.jobs(), 120_000);
        assert_eq!(cfg.effective_reps(), 5);
        cfg.reps = 7;
        assert_eq!(cfg.effective_reps(), 7);
    }
}
