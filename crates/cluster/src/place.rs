//! RL-trained node placement: an [`Env`]-implementing [`ClusterEnv`]
//! whose rewards come from the **real multi-node simulation**, plus the
//! training, deployment, and checkpoint wiring around it.
//!
//! The PR-4 placement environment was a stub: its "load" was synthetic
//! accumulation (assigned work never drained) and its reward a
//! load-balance shaping term. This module closes the loop the paper's
//! §VI sketches: every episode replays a job trace through the exact
//! [`ClusterDrive`] cycle the evaluation simulator
//! ([`crate::multinode::MultiNodeSim`]) runs, so the states the agent
//! learns from are realized [`NodeLoad`] snapshots (running placements
//! drain, co-scheduling speedups show up, queues clear) and the
//! terminal signal is the realized cluster makespan.
//!
//! # Reward definition
//!
//! A step places the episode's next job on node `a` at its arrival
//! instant, against the barrier load snapshot `L` (updated
//! incrementally within a burst, exactly as a [`NodeSelector`](crate::NodeSelector) would
//! see it):
//!
//! * **Per-decision queue-delay delta** `r_i = (best − chosen) / norm`
//!   where `chosen = L[a].outstanding / L[a].total_gpus` is the
//!   realized queue-delay estimate the job faces on the chosen node,
//!   `best` is the minimum of that quantity over the nodes that can
//!   host the job, and `norm` is `1 +` the trace's mean solo time.
//!   `r_i ≤ 0`, and `0` exactly when the choice is (one of) the
//!   realized-least-loaded nodes — the greedy heuristic is the
//!   zero-regret point of the shaping term, but the loads it is
//!   measured against come from the live simulation, not synthetic
//!   accumulation.
//! * **Terminal makespan bonus** `r_f = rf_weight × bound / makespan`,
//!   paid on the last placement after the cluster drains: `makespan`
//!   is the realized [`MultiNodeReport`] makespan and `bound` the
//!   perfect-balance lower bound (total GPU-seconds over cluster
//!   GPUs). This is the signal that can push the policy *past*
//!   least-loaded: a placement that looks locally worse but shortens
//!   the realized schedule pays off here.
//!
//! Because the environment consults [`ClusterDrive::loads`] — the same
//! snapshots [`MultiNodeSim::run`](crate::multinode::MultiNodeSim::run)
//! hands a [`NodeSelector`](crate::NodeSelector) — a greedy rollout of a trained agent
//! through [`ClusterEnv`] produces **identical placements** to
//! deploying that agent as a [`PolicySelector`] inside the simulator
//! (asserted in this module's tests and pinned by
//! `tests/golden_placement.rs`).
//!
//! # Training and deployment
//!
//! [`train_placement`] runs the generic rollout/learner pipeline
//! ([`train_env`]) over seed-derived traces from the
//! [`crate::trace`] generator suite — all pipeline guarantees
//! (worker-count invariance, overlap staleness, sharded replay) carry
//! over unchanged. The result is a [`PlacementAgent`]:
//! [`PlacementAgent::selector`] turns it into a drop-in
//! [`NodeSelector`](crate::NodeSelector), and [`PlacementAgent::save_bytes`] /
//! [`PlacementExperiment::load_bytes`] checkpoint spec + weights in the
//! same container style as `hrp-core`'s `Experiment` (`HRPP` magic),
//! reloading to bit-identical placements.

use crate::backfill::{BackfillPlanner, BackfillPolicy, QueueOrder};
use crate::cosched::CoSchedulingDispatcher;
use crate::job::ClusterJob;
use crate::multinode::{ClusterDrive, MultiNodeReport};
use crate::sim::Dispatcher;
use crate::trace::{self, TraceConfig, TraceKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hrp_core::cluster_env::{encode_placement_state, placement_fit_mask, NodeLoad, PolicySelector};
use hrp_core::env::StepResult;
use hrp_core::experiment::CheckpointError;
use hrp_core::policies::MpsOnly;
use hrp_core::rl::{greedy_rollout, DqnSnapshot, Env, EnvFactory, Learner};
use hrp_core::train::{train_env, PipelineConfig, TrainReport};
use hrp_nn::net::Head;
use hrp_nn::serialize::{decode_params, save_weights};
use hrp_nn::{DqnAgent, DqnConfig};
use hrp_workloads::Suite;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Magic prefix for placement checkpoints (the cluster-tier sibling of
/// `hrp-core`'s `HRPE`).
const MAGIC: &[u8; 4] = b"HRPP";
/// Checkpoint format version.
const VERSION: u32 = 1;

/// What a drained placement episode yields: the assignment vector plus
/// the realized simulation report (the makespan the terminal reward was
/// computed from).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementOutcome {
    /// One node id per trace job, in arrival order.
    pub assignment: Vec<usize>,
    /// The drained cluster report (`None` only if the episode was
    /// consumed before completion).
    pub report: Option<MultiNodeReport>,
}

/// One placement episode as an [`Env`]: route each job of a (sorted)
/// trace to one of `N` identical nodes, with rewards from the realized
/// simulation — see the [module docs](self) for the exact definition.
///
/// * **State** — [`encode_placement_state`] over the live
///   [`ClusterDrive::loads`] snapshots and the arriving job
///   (`2·N + 2` floats; all-zero job features once drained).
/// * **Action** — the node id (`N` actions; the mask drops nodes too
///   small for the job, so placement never dead-ends).
/// * **Decision** — a [`PlacementOutcome`].
pub struct ClusterEnv<'a, D: Dispatcher + Send> {
    suite: &'a Suite,
    trace: &'a [ClusterJob],
    make: &'a (dyn Fn(usize) -> D + Sync),
    nodes: usize,
    gpus_per_node: usize,
    rf_weight: f64,
    /// Reward normaliser: `1 +` mean job solo time.
    norm: f64,
    /// Perfect-balance makespan lower bound (total GPU-seconds over
    /// cluster GPUs).
    bound: f64,
    drive: ClusterDrive<'a, D>,
    pos: usize,
    assignment: Vec<usize>,
    report: Option<MultiNodeReport>,
}

impl<'a, D: Dispatcher + Send> ClusterEnv<'a, D> {
    /// A placement episode over `nodes` identical nodes of
    /// `gpus_per_node` GPUs, each running `make_dispatcher(node)`.
    /// `trace` must be non-empty, sorted by arrival, and fit the nodes.
    ///
    /// # Panics
    /// Panics if `trace` is empty or unsorted, if `nodes` is outside
    /// `1..=64`, or if any job cannot fit on a node.
    pub fn new(
        suite: &'a Suite,
        nodes: usize,
        gpus_per_node: usize,
        trace: &'a [ClusterJob],
        make_dispatcher: &'a (dyn Fn(usize) -> D + Sync),
        rf_weight: f64,
    ) -> Self {
        assert!(!trace.is_empty(), "a placement episode needs jobs");
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival"
        );
        for j in trace {
            assert!(
                j.gpus >= 1 && j.gpus <= gpus_per_node,
                "job {} needs {} GPUs but nodes have {gpus_per_node}",
                j.id,
                j.gpus
            );
        }
        let total_work: f64 = trace.iter().map(|j| j.solo_time(suite)).sum();
        let gpu_seconds: f64 = trace
            .iter()
            .map(|j| j.solo_time(suite) * j.gpus as f64)
            .sum();
        let mut env = Self {
            suite,
            trace,
            make: make_dispatcher,
            nodes,
            gpus_per_node,
            rf_weight,
            norm: 1.0 + total_work / trace.len() as f64,
            bound: gpu_seconds / (nodes * gpus_per_node) as f64,
            drive: ClusterDrive::new(suite, nodes, gpus_per_node, make_dispatcher),
            pos: 0,
            assignment: Vec::with_capacity(trace.len()),
            report: None,
        };
        env.drive.reserve_events(2 * trace.len());
        env.drive.advance_to(env.trace[0].arrival);
        env
    }

    /// Number of nodes (= action-space size).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The live load snapshots the next decision is made against.
    #[must_use]
    pub fn loads(&self) -> &[NodeLoad] {
        self.drive.loads()
    }
}

impl<D: Dispatcher + Send> Env for ClusterEnv<'_, D> {
    type Decision = PlacementOutcome;

    fn state_dim(&self) -> usize {
        2 * self.nodes + 2
    }

    fn n_actions(&self) -> usize {
        self.nodes
    }

    fn done(&self) -> bool {
        self.pos == self.trace.len()
    }

    fn state_into(&self, out: &mut Vec<f32>) {
        let (gpus, work) = self
            .trace
            .get(self.pos)
            .map_or((0, 0.0), |j| (j.gpus, j.solo_time(self.suite)));
        encode_placement_state(self.drive.loads(), gpus, work, out);
    }

    fn valid_mask(&self) -> u64 {
        if self.done() {
            return 0;
        }
        placement_fit_mask(self.drive.loads(), self.trace[self.pos].gpus)
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(!self.done(), "step on a drained placement episode");
        let mask = self.valid_mask();
        assert!(
            action < self.nodes && (mask >> action) & 1 == 1,
            "node {action} is not a valid placement"
        );
        let job = self.trace[self.pos].clone();
        let loads = self.drive.loads();
        let best = loads
            .iter()
            .filter(|l| l.total_gpus >= job.gpus)
            .map(NodeLoad::per_gpu_outstanding)
            .fold(f64::INFINITY, f64::min);
        let ri = (best - loads[action].per_gpu_outstanding()) / self.norm;
        self.drive.place(action, job);
        self.assignment.push(action);
        self.pos += 1;
        if self.pos < self.trace.len() {
            let next = self.trace[self.pos].arrival;
            if next.total_cmp(&self.trace[self.pos - 1].arrival).is_ne() {
                self.drive.advance_to(next);
            }
            StepResult {
                reward: ri,
                done: false,
                rf: 0.0,
                ri_mean: ri,
            }
        } else {
            let report = self.drive.finish();
            let makespan = report.aggregate.makespan;
            let rf = self.rf_weight * self.bound / makespan.max(f64::MIN_POSITIVE);
            self.report = Some(report);
            StepResult {
                reward: ri + rf,
                done: true,
                rf,
                ri_mean: ri,
            }
        }
    }

    fn reset(&mut self) {
        self.drive = ClusterDrive::new(self.suite, self.nodes, self.gpus_per_node, self.make);
        self.drive.reserve_events(2 * self.trace.len());
        self.drive.advance_to(self.trace[0].arrival);
        self.pos = 0;
        self.assignment.clear();
        self.report = None;
    }

    fn into_decision(self) -> PlacementOutcome {
        PlacementOutcome {
            assignment: self.assignment,
            report: self.report,
        }
    }
}

/// The legacy node-local dispatcher: window co-scheduling with the
/// MPS-only node policy (cheap — no node-level training required).
/// [`PlacementConfig::node_dispatcher`] now returns the
/// [`PlacementDispatcher`] wrapper so the RL layer can also act
/// *through* a backfilling planner.
pub type NodeDispatcher = CoSchedulingDispatcher<MpsOnly>;

/// The node-local dispatcher a [`PlacementConfig`] selects: the
/// co-scheduling window dispatcher, or a slot-tree backfilling
/// planner — the knob that lets the RL agent parameterize the
/// classical scheduler it places jobs *through*
/// ([`PlacementConfig::backfill`] / [`PlacementConfig::walltime_err`]
/// / [`PlacementConfig::queue_order`]).
#[derive(Clone)]
pub enum PlacementDispatcher {
    /// Window co-scheduling with the MPS-only node policy.
    CoSched(NodeDispatcher),
    /// Slot-tree backfilling ([`crate::backfill`]).
    Backfill(BackfillPlanner),
}

impl Dispatcher for PlacementDispatcher {
    fn name(&self) -> &'static str {
        match self {
            Self::CoSched(d) => d.name(),
            Self::Backfill(d) => d.name(),
        }
    }

    fn next_placement(
        &mut self,
        suite: &Suite,
        waiting: &[ClusterJob],
        free_gpus: usize,
        now: f64,
    ) -> Option<crate::sim::Placement> {
        match self {
            Self::CoSched(d) => d.next_placement(suite, waiting, free_gpus, now),
            Self::Backfill(d) => d.next_placement(suite, waiting, free_gpus, now),
        }
    }

    fn next_wakeup(&self, now: f64) -> Option<f64> {
        match self {
            Self::CoSched(d) => d.next_wakeup(now),
            Self::Backfill(d) => d.next_wakeup(now),
        }
    }
}

/// Stamps out [`ClusterEnv`] episodes over job traces: the
/// episode-invariant pieces (suite, cluster geometry, dispatcher
/// constructor, reward weight) behind the [`EnvFactory`] interface, so
/// [`train_env`] runs placement training with zero pipeline changes.
pub struct PlacementEnvFactory<'a, D, M>
where
    D: Dispatcher + Send,
    M: Fn(usize) -> D + Sync,
{
    suite: &'a Suite,
    nodes: usize,
    gpus_per_node: usize,
    make: M,
    rf_weight: f64,
    steps_hint: usize,
}

impl<'a, D, M> PlacementEnvFactory<'a, D, M>
where
    D: Dispatcher + Send,
    M: Fn(usize) -> D + Sync,
{
    /// Bundle the episode-invariant state. `steps_hint` is the expected
    /// jobs per trace (scales the ε-decay schedule).
    #[must_use]
    pub fn new(
        suite: &'a Suite,
        nodes: usize,
        gpus_per_node: usize,
        make_dispatcher: M,
        rf_weight: f64,
        steps_hint: usize,
    ) -> Self {
        Self {
            suite,
            nodes,
            gpus_per_node,
            make: make_dispatcher,
            rf_weight,
            steps_hint,
        }
    }
}

impl<D, M> EnvFactory for PlacementEnvFactory<'_, D, M>
where
    D: Dispatcher + Send,
    M: Fn(usize) -> D + Sync,
{
    type Ctx = Vec<ClusterJob>;

    type Env<'e>
        = ClusterEnv<'e, D>
    where
        Self: 'e;

    fn make<'e>(&'e self, trace: &'e Vec<ClusterJob>) -> ClusterEnv<'e, D> {
        ClusterEnv::new(
            self.suite,
            self.nodes,
            self.gpus_per_node,
            trace,
            &self.make,
            self.rf_weight,
        )
    }

    fn state_dim(&self) -> usize {
        2 * self.nodes + 2
    }

    fn n_actions(&self) -> usize {
        self.nodes
    }

    fn episode_steps_hint(&self) -> usize {
        self.steps_hint
    }
}

/// Placement-training configuration: cluster geometry, the training
/// trace family, and the DQN/pipeline knobs (mirroring
/// `hrp-core::train::TrainConfig` where they overlap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Simulated nodes (= action-space size).
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Window size of each node's co-scheduling dispatcher.
    pub node_w: usize,
    /// Concurrency cap of each node's co-scheduling dispatcher.
    pub node_cmax: usize,
    /// The training-trace family; episode `e` replays trace
    /// `e % n_traces`, generated with a seed derived from
    /// `trace.seed` (see [`training_traces`]).
    pub trace: TraceConfig,
    /// Number of distinct training traces.
    pub n_traces: usize,
    /// Training episodes.
    pub episodes: usize,
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Target-network sync period (learning steps).
    pub target_sync_every: u64,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Double-DQN targets.
    pub double: bool,
    /// Dueling head.
    pub dueling: bool,
    /// Final ε of the exploration schedule.
    pub eps_end: f64,
    /// Terminal makespan-bonus weight (see the [module docs](self)).
    pub rf_weight: f64,
    /// Master seed (weights, ε draws, per-episode RNG streams).
    pub seed: u64,
    /// Rollout worker threads (execution detail; results identical for
    /// any value).
    pub n_workers: usize,
    /// Episodes rolled out per weight snapshot.
    pub rollout_round: usize,
    /// Double-buffered training rounds.
    pub overlap: bool,
    /// Replay shards.
    pub shards: usize,
    /// Node-local backfilling policy, or `None` for the legacy
    /// co-scheduling dispatcher. This is the planner-parameterization
    /// action of the ISSUE's RL split: the policy fixes the
    /// reservation depth ([`BackfillPolicy::depth_and_backfill`]).
    pub backfill: Option<BackfillPolicy>,
    /// Walltime-estimate error fraction for backfilling nodes
    /// (`[0, 1)`; ignored without [`PlacementConfig::backfill`]).
    pub walltime_err: f64,
    /// How simultaneous arrivals are ordered before episodes and
    /// deployments see them (the queue-order pick).
    pub queue_order: QueueOrder,
    /// Layer per-user fair-share ordering ([`crate::fair`]) on top of
    /// [`PlacementConfig::queue_order`] for training traces and
    /// deployments. Only meaningful with [`TraceConfig::users`] ≥ 2;
    /// a no-op on untagged traces.
    pub fair_order: bool,
    /// Per-user in-flight quota for the fairness knobs handed to the
    /// serving tier ([`usize::MAX`] = unlimited).
    pub fair_quota: usize,
    /// Karma half-life (seconds) of the fair-share accounting.
    pub fair_half_life: f64,
}

impl PlacementConfig {
    /// The evaluation-scale default: a 4-node × 2-GPU cluster trained
    /// on 32-job skewed traces.
    #[must_use]
    pub fn default_cfg() -> Self {
        Self {
            nodes: 4,
            gpus_per_node: 2,
            node_w: 4,
            node_cmax: 4,
            trace: TraceConfig::new(TraceKind::Skewed, 32, 42),
            n_traces: 12,
            episodes: 600,
            hidden: vec![64, 32],
            gamma: 0.98,
            lr: 1e-3,
            batch_size: 32,
            target_sync_every: 200,
            buffer_capacity: 20_000,
            double: true,
            dueling: true,
            eps_end: 0.02,
            rf_weight: 0.5,
            seed: 42,
            n_workers: 0,
            rollout_round: 8,
            overlap: false,
            shards: 1,
            backfill: None,
            walltime_err: 0.0,
            queue_order: QueueOrder::Arrival,
            fair_order: false,
            fair_quota: usize::MAX,
            fair_half_life: 300.0,
        }
    }

    /// A small configuration for tests and `--quick` smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            episodes: 240,
            n_traces: 6,
            hidden: vec![32, 16],
            ..Self::default_cfg()
        }
    }

    /// The [`DqnConfig`] this placement geometry induces (shared by
    /// training and checkpoint loading, so a reloaded agent always has
    /// the trained shape).
    #[must_use]
    pub fn dqn_config(&self) -> DqnConfig {
        DqnConfig {
            state_dim: 2 * self.nodes + 2,
            n_actions: self.nodes,
            hidden: self.hidden.clone(),
            gamma: self.gamma,
            lr: self.lr,
            batch_size: self.batch_size,
            target_sync_every: self.target_sync_every,
            buffer_capacity: self.buffer_capacity,
            shards: self.shards.max(1),
            huber_delta: 1.0,
            double: self.double,
            head: if self.dueling {
                Head::Dueling
            } else {
                Head::Plain
            },
            seed: self.seed,
        }
    }

    /// The fairness knobs as a [`crate::fair::FairConfig`] (quota +
    /// karma half-life), shared with the serving admission tier.
    #[must_use]
    pub fn fair_config(&self) -> crate::fair::FairConfig {
        let cfg = crate::fair::FairConfig::new().half_life(self.fair_half_life);
        if self.fair_quota == usize::MAX {
            cfg
        } else {
            cfg.quota(self.fair_quota)
        }
    }

    /// A fresh node-local dispatcher for this config: a backfilling
    /// planner when [`PlacementConfig::backfill`] is set, the window
    /// co-scheduling dispatcher otherwise.
    #[must_use]
    pub fn node_dispatcher(&self) -> PlacementDispatcher {
        match self.backfill {
            None => PlacementDispatcher::CoSched(CoSchedulingDispatcher::new(
                MpsOnly,
                self.node_w,
                self.node_cmax,
            )),
            Some(policy) => PlacementDispatcher::Backfill(
                BackfillPlanner::new(policy, self.gpus_per_node)
                    .with_walltime_err(self.walltime_err),
            ),
        }
    }
}

/// The seed of training trace `i`: the same stream-splitting mix the
/// pipeline uses for per-episode RNGs, so traces are independent and
/// reproducible from the base seed alone.
#[must_use]
pub fn trace_seed(base: u64, i: usize) -> u64 {
    base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)
}

/// Generate the config's training-trace family: `n_traces` traces of
/// the configured kind/size, seeds derived via [`trace_seed`].
#[must_use]
pub fn training_traces(suite: &Suite, cfg: &PlacementConfig) -> Vec<Vec<ClusterJob>> {
    (0..cfg.n_traces.max(1))
        .map(|i| {
            let tc = cfg
                .trace
                .clone()
                .seed(trace_seed(cfg.trace.seed, i))
                .max_gpus(cfg.gpus_per_node);
            let mut jobs = trace::generate(suite, &tc);
            cfg.queue_order.apply(suite, &mut jobs);
            if cfg.fair_order {
                crate::fair::apply_fair_order(suite, &cfg.fair_config(), &mut jobs);
            }
            jobs
        })
        .collect()
}

/// Train a placement agent end-to-end through the generic
/// rollout/learner pipeline: episodes replay seed-derived traces
/// through the simulation-backed [`ClusterEnv`], the learner is a
/// plain [`DqnAgent`] over the `2·N + 2` placement state. Bit-identical
/// for any [`PlacementConfig::n_workers`] value.
#[must_use]
pub fn train_placement(suite: &Suite, cfg: PlacementConfig) -> (PlacementAgent, TrainReport) {
    let traces = training_traces(suite, &cfg);
    let template = cfg.clone();
    let factory = PlacementEnvFactory::new(
        suite,
        cfg.nodes,
        cfg.gpus_per_node,
        move |_| template.node_dispatcher(),
        cfg.rf_weight,
        cfg.trace.jobs,
    );
    let agent = DqnAgent::new(cfg.dqn_config());
    let pipeline = PipelineConfig {
        episodes: cfg.episodes,
        seed: cfg.seed,
        eps_end: cfg.eps_end,
        n_workers: cfg.n_workers,
        rollout_round: cfg.rollout_round,
        overlap: cfg.overlap,
        shards: cfg.shards.max(1),
    };
    let (agent, report) = train_env(&factory, agent, &traces, &pipeline);
    (PlacementAgent { agent, cfg }, report)
}

/// A trained (or freshly initialised) placement agent: the DQN plus
/// the config that shaped it.
pub struct PlacementAgent {
    agent: DqnAgent,
    cfg: PlacementConfig,
}

impl PlacementAgent {
    /// An *untrained* agent of this geometry (deterministic initial
    /// weights from the config seed) — useful as a property-test
    /// selector and as the pre-training baseline.
    #[must_use]
    pub fn untrained(cfg: PlacementConfig) -> Self {
        Self {
            agent: DqnAgent::new(cfg.dqn_config()),
            cfg,
        }
    }

    /// The configuration used.
    #[must_use]
    pub fn config(&self) -> &PlacementConfig {
        &self.cfg
    }

    /// The underlying DQN (weight export, inspection).
    #[must_use]
    pub fn dqn(&self) -> &DqnAgent {
        &self.agent
    }

    /// Freeze the policy into a drop-in [`NodeSelector`](crate::NodeSelector) for
    /// [`crate::multinode::MultiNodeSim`] — greedy, deterministic, and
    /// placement-identical to a greedy [`ClusterEnv`] rollout.
    #[must_use]
    pub fn selector(&self) -> PolicySelector<DqnSnapshot> {
        PolicySelector::new(Learner::snapshot(&self.agent))
    }

    /// Greedy (ε = 0) rollout of one placement episode over `trace` —
    /// the assignment vector plus the realized simulation report.
    ///
    /// # Panics
    /// Panics if the trace is empty, unsorted, or does not fit the
    /// configured nodes.
    #[must_use]
    pub fn greedy_placements(&self, suite: &Suite, trace: &[ClusterJob]) -> PlacementOutcome {
        // The config's queue-order pick applies to episodes exactly as
        // MultiNodeSim::with_queue_order applies it to deployments.
        let mut trace = trace.to_vec();
        self.cfg.queue_order.apply(suite, &mut trace);
        let make = |_: usize| self.cfg.node_dispatcher();
        let env = ClusterEnv::new(
            suite,
            self.cfg.nodes,
            self.cfg.gpus_per_node,
            &trace,
            &make,
            self.cfg.rf_weight,
        );
        greedy_rollout(env, &self.agent)
    }

    /// Serialise the full checkpoint: spec + online-network weights
    /// (`HRPP` container, mirroring `hrp-core`'s `HRPE`).
    #[must_use]
    pub fn save_bytes(&self) -> Bytes {
        let spec = encode_spec(&self.cfg);
        let weights = save_weights(self.agent.online_net());
        let mut buf = BytesMut::with_capacity(12 + spec.len() + weights.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(spec.len() as u32);
        buf.put_slice(spec.as_bytes());
        buf.put_slice(&weights);
        buf.freeze()
    }

    /// Write the checkpoint to a file.
    ///
    /// # Errors
    /// Surfaces I/O failures.
    pub fn save_file(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.save_bytes()).map_err(|e| CheckpointError::Io(e.to_string()))
    }
}

/// The fluent placement-experiment spec: configure, [`run`][Self::run_on],
/// checkpoint — the cluster-tier mirror of `hrp-core`'s `Experiment`.
///
/// ```no_run
/// use hrp_cluster::place::PlacementExperiment;
/// use hrp_cluster::trace::TraceKind;
///
/// let suite = hrp_workloads::Suite::paper_suite(&hrp_gpusim::GpuArch::a100());
/// let run = PlacementExperiment::quick()
///     .trace_kind(TraceKind::Skewed)
///     .episodes(240)
///     .run_on(&suite);
/// println!("late return: {:.3}", run.report.late_return);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementExperiment {
    cfg: PlacementConfig,
}

impl PlacementExperiment {
    /// The evaluation-scale configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            cfg: PlacementConfig::default_cfg(),
        }
    }

    /// The small test/smoke configuration.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            cfg: PlacementConfig::quick(),
        }
    }

    /// Wrap an explicit config.
    #[must_use]
    pub fn from_config(cfg: PlacementConfig) -> Self {
        Self { cfg }
    }

    /// Select the training-trace kind.
    #[must_use]
    pub fn trace_kind(mut self, kind: TraceKind) -> Self {
        self.cfg.trace.kind = kind;
        self
    }

    /// Simulated node count.
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Training episodes.
    #[must_use]
    pub fn episodes(mut self, n: usize) -> Self {
        self.cfg.episodes = n;
        self
    }

    /// Master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Rollout worker threads (execution detail; 0 = auto).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.n_workers = n;
        self
    }

    /// Double-buffered (overlapped) training rounds.
    #[must_use]
    pub fn overlap(mut self, on: bool) -> Self {
        self.cfg.overlap = on;
        self
    }

    /// Replay shards (1 = classic single ring).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n.max(1);
        self
    }

    /// The underlying config.
    #[must_use]
    pub fn config(&self) -> &PlacementConfig {
        &self.cfg
    }

    /// Train on an explicit suite.
    #[must_use]
    pub fn run_on(self, suite: &Suite) -> TrainedPlacement {
        let (agent, report) = train_placement(suite, self.cfg);
        TrainedPlacement { agent, report }
    }

    /// Rebuild a trained placement agent from a checkpoint blob:
    /// decode the spec, rebuild the deterministic geometry, load the
    /// weights.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] when the blob is not an `HRPP`
    /// checkpoint, has an unsupported version, a malformed spec, or
    /// weights of the wrong shape.
    pub fn load_bytes(mut blob: Bytes) -> Result<PlacementAgent, CheckpointError> {
        if blob.len() < 12 || &blob[..4] != MAGIC {
            return Err(CheckpointError::NotACheckpoint);
        }
        blob.advance(4);
        let version = blob.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let spec_len = blob.get_u32_le() as usize;
        if blob.len() < spec_len {
            return Err(CheckpointError::NotACheckpoint);
        }
        let spec_bytes = blob.split_to(spec_len);
        let spec = std::str::from_utf8(&spec_bytes)
            .map_err(|_| CheckpointError::Spec("spec is not UTF-8".into()))?;
        let cfg = decode_spec(spec)?;
        let mut agent = DqnAgent::new(cfg.dqn_config());
        let params = decode_params(blob, agent.online_net().num_params())
            .map_err(CheckpointError::Weights)?;
        agent.load_weights(&params);
        Ok(PlacementAgent { agent, cfg })
    }

    /// [`PlacementExperiment::load_bytes`] from a file.
    ///
    /// # Errors
    /// I/O failures surface as [`CheckpointError::Io`]; decode failures
    /// as in [`PlacementExperiment::load_bytes`].
    pub fn load_file(path: &Path) -> Result<PlacementAgent, CheckpointError> {
        let raw = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::load_bytes(Bytes::from(raw))
    }
}

impl Default for PlacementExperiment {
    fn default() -> Self {
        Self::new()
    }
}

/// A completed placement run: the deployable agent plus its learning
/// statistics.
pub struct TrainedPlacement {
    /// The trained, deployable agent.
    pub agent: PlacementAgent,
    /// Learning statistics of the run.
    pub report: TrainReport,
}

impl TrainedPlacement {
    /// Checkpoint the run (delegates to [`PlacementAgent::save_bytes`]).
    #[must_use]
    pub fn save_bytes(&self) -> Bytes {
        self.agent.save_bytes()
    }
}

/// Encode a config as `key=value` lines (floats shortest-round-trip).
fn encode_spec(cfg: &PlacementConfig) -> String {
    let hidden: Vec<String> = cfg.hidden.iter().map(ToString::to_string).collect();
    let mut s = String::new();
    let mut kv = |k: &str, v: String| {
        s.push_str(k);
        s.push('=');
        s.push_str(&v);
        s.push('\n');
    };
    kv("nodes", cfg.nodes.to_string());
    kv("gpus_per_node", cfg.gpus_per_node.to_string());
    kv("node_w", cfg.node_w.to_string());
    kv("node_cmax", cfg.node_cmax.to_string());
    kv("trace.kind", cfg.trace.kind.name().to_string());
    kv("trace.jobs", cfg.trace.jobs.to_string());
    kv("trace.seed", cfg.trace.seed.to_string());
    kv("trace.max_gpus", cfg.trace.max_gpus.to_string());
    kv("trace.mean_gap", format!("{:?}", cfg.trace.mean_gap));
    kv("trace.gang_share", format!("{:?}", cfg.trace.gang_share));
    kv("trace.users", cfg.trace.users.to_string());
    kv("trace.user_skew", format!("{:?}", cfg.trace.user_skew));
    kv("n_traces", cfg.n_traces.to_string());
    kv("episodes", cfg.episodes.to_string());
    kv("hidden", hidden.join(","));
    kv("gamma", format!("{:?}", cfg.gamma));
    kv("lr", format!("{:?}", cfg.lr));
    kv("batch_size", cfg.batch_size.to_string());
    kv("target_sync_every", cfg.target_sync_every.to_string());
    kv("buffer_capacity", cfg.buffer_capacity.to_string());
    kv("double", cfg.double.to_string());
    kv("dueling", cfg.dueling.to_string());
    kv("eps_end", format!("{:?}", cfg.eps_end));
    kv("rf_weight", format!("{:?}", cfg.rf_weight));
    kv("seed", cfg.seed.to_string());
    kv("n_workers", cfg.n_workers.to_string());
    kv("rollout_round", cfg.rollout_round.to_string());
    kv("overlap", cfg.overlap.to_string());
    kv("shards", cfg.shards.to_string());
    kv(
        "backfill",
        cfg.backfill
            .map_or_else(|| "none".to_string(), |p| p.name().to_string()),
    );
    kv("walltime_err", format!("{:?}", cfg.walltime_err));
    kv("queue_order", cfg.queue_order.name().to_string());
    kv("fair_order", cfg.fair_order.to_string());
    kv("fair_quota", cfg.fair_quota.to_string());
    kv("fair_half_life", format!("{:?}", cfg.fair_half_life));
    s
}

/// Decode a `key=value` spec, requiring every field exactly once —
/// except the tenant/fairness keys added after the format shipped,
/// which default to their off values so legacy `HRPP` blobs still load.
fn decode_spec(spec: &str) -> Result<PlacementConfig, CheckpointError> {
    fn get<'a>(
        map: &std::collections::BTreeMap<&'a str, &'a str>,
        key: &str,
    ) -> Result<&'a str, CheckpointError> {
        map.get(key)
            .copied()
            .ok_or_else(|| CheckpointError::Spec(format!("missing key '{key}'")))
    }
    fn parse<T: std::str::FromStr>(key: &str, raw: &str) -> Result<T, CheckpointError> {
        raw.parse()
            .map_err(|_| CheckpointError::Spec(format!("bad value for '{key}': '{raw}'")))
    }
    fn parse_or<T: std::str::FromStr>(
        map: &std::collections::BTreeMap<&str, &str>,
        key: &str,
        default: T,
    ) -> Result<T, CheckpointError> {
        map.get(key).map_or(Ok(default), |raw| parse(key, raw))
    }

    let mut map = std::collections::BTreeMap::new();
    for line in spec.lines() {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| CheckpointError::Spec(format!("not a key=value line: '{line}'")))?;
        if map.insert(k, v).is_some() {
            return Err(CheckpointError::Spec(format!("duplicate key '{k}'")));
        }
    }

    let hidden_raw = get(&map, "hidden")?;
    let hidden = if hidden_raw.is_empty() {
        Vec::new()
    } else {
        hidden_raw
            .split(',')
            .map(|p| parse::<usize>("hidden", p))
            .collect::<Result<Vec<usize>, _>>()?
    };
    let kind = TraceKind::parse(get(&map, "trace.kind")?)
        .map_err(|bad| CheckpointError::Spec(format!("unknown trace kind '{bad}'")))?;
    let backfill = match get(&map, "backfill")? {
        "none" => None,
        raw => Some(
            BackfillPolicy::parse(raw)
                .map_err(|bad| CheckpointError::Spec(format!("unknown backfill policy '{bad}'")))?,
        ),
    };
    let queue_order = QueueOrder::parse(get(&map, "queue_order")?)
        .map_err(|bad| CheckpointError::Spec(format!("unknown queue order '{bad}'")))?;

    Ok(PlacementConfig {
        nodes: parse("nodes", get(&map, "nodes")?)?,
        gpus_per_node: parse("gpus_per_node", get(&map, "gpus_per_node")?)?,
        node_w: parse("node_w", get(&map, "node_w")?)?,
        node_cmax: parse("node_cmax", get(&map, "node_cmax")?)?,
        trace: TraceConfig {
            kind,
            jobs: parse("trace.jobs", get(&map, "trace.jobs")?)?,
            seed: parse("trace.seed", get(&map, "trace.seed")?)?,
            max_gpus: parse("trace.max_gpus", get(&map, "trace.max_gpus")?)?,
            mean_gap: parse("trace.mean_gap", get(&map, "trace.mean_gap")?)?,
            gang_share: parse("trace.gang_share", get(&map, "trace.gang_share")?)?,
            users: parse_or(&map, "trace.users", 0)?,
            user_skew: parse_or(&map, "trace.user_skew", trace::DEFAULT_USER_SKEW)?,
        },
        n_traces: parse("n_traces", get(&map, "n_traces")?)?,
        episodes: parse("episodes", get(&map, "episodes")?)?,
        hidden,
        gamma: parse("gamma", get(&map, "gamma")?)?,
        lr: parse("lr", get(&map, "lr")?)?,
        batch_size: parse("batch_size", get(&map, "batch_size")?)?,
        target_sync_every: parse("target_sync_every", get(&map, "target_sync_every")?)?,
        buffer_capacity: parse("buffer_capacity", get(&map, "buffer_capacity")?)?,
        double: parse("double", get(&map, "double")?)?,
        dueling: parse("dueling", get(&map, "dueling")?)?,
        eps_end: parse("eps_end", get(&map, "eps_end")?)?,
        rf_weight: parse("rf_weight", get(&map, "rf_weight")?)?,
        seed: parse("seed", get(&map, "seed")?)?,
        n_workers: parse("n_workers", get(&map, "n_workers")?)?,
        rollout_round: parse("rollout_round", get(&map, "rollout_round")?)?,
        overlap: parse("overlap", get(&map, "overlap")?)?,
        shards: parse("shards", get(&map, "shards")?)?,
        backfill,
        walltime_err: parse("walltime_err", get(&map, "walltime_err")?)?,
        queue_order,
        fair_order: parse_or(&map, "fair_order", false)?,
        fair_quota: parse_or(&map, "fair_quota", usize::MAX)?,
        fair_half_life: parse_or(&map, "fair_half_life", 300.0)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multinode::MultiNodeSim;
    use crate::select::LeastLoaded;
    use hrp_gpusim::GpuArch;

    fn suite() -> Suite {
        Suite::paper_suite(&GpuArch::a100())
    }

    fn skewed_trace(suite: &Suite, jobs: usize, seed: u64) -> Vec<ClusterJob> {
        trace::generate(suite, &TraceConfig::new(TraceKind::Skewed, jobs, seed))
    }

    fn make_env<'a>(
        s: &'a Suite,
        nodes: usize,
        trace: &'a [ClusterJob],
        make: &'a (dyn Fn(usize) -> NodeDispatcher + Sync),
    ) -> ClusterEnv<'a, NodeDispatcher> {
        ClusterEnv::new(s, nodes, 2, trace, make, 0.5)
    }

    fn dispatcher_maker() -> impl Fn(usize) -> NodeDispatcher + Sync {
        |_| CoSchedulingDispatcher::new(MpsOnly, 4, 4)
    }

    #[test]
    fn env_contract_holds_over_an_episode() {
        let s = suite();
        let t = skewed_trace(&s, 12, 3);
        let make = dispatcher_maker();
        let mut env = make_env(&s, 3, &t, &make);
        assert_eq!(env.state_dim(), 8);
        assert_eq!(env.n_actions(), 3);
        let mut state = Vec::new();
        let mut steps = 0;
        while !env.done() {
            assert_eq!(env.valid_mask(), 0b111, "all 2-GPU nodes fit 1-GPU jobs");
            env.state_into(&mut state);
            assert_eq!(state.len(), 8);
            let out = env.step(steps % 3);
            assert!(out.ri_mean <= 0.0, "queue-delay delta is a penalty");
            steps += 1;
        }
        env.state_into(&mut state);
        assert_eq!(state.len(), 8, "terminal state keeps the dim");
        assert_eq!(env.valid_mask(), 0);
        assert_eq!(steps, 12);
        let outcome = env.into_decision();
        assert_eq!(outcome.assignment.len(), 12);
        let report = outcome.report.expect("drained episode has a report");
        assert_eq!(report.completed_jobs(), 12);
        assert!(report.aggregate.makespan > 0.0);
    }

    #[test]
    fn least_loaded_choices_pay_zero_delay_penalty() {
        let s = suite();
        let t = skewed_trace(&s, 8, 1);
        let make = dispatcher_maker();
        let mut env = make_env(&s, 2, &t, &make);
        while !env.done() {
            // Mirror least-loaded per-GPU with low-id ties.
            let best = env
                .loads()
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.per_gpu_outstanding()
                        .total_cmp(&b.1.per_gpu_outstanding())
                        .then(a.0.cmp(&b.0))
                })
                .map(|(i, _)| i)
                .unwrap();
            let out = env.step(best);
            assert_eq!(out.ri_mean, 0.0, "least-loaded is the zero-regret point");
        }
    }

    #[test]
    fn terminal_bonus_rewards_shorter_makespans() {
        let s = suite();
        let t = skewed_trace(&s, 16, 7);
        let make = dispatcher_maker();
        let run_all_on = |node: usize| {
            let mut env = make_env(&s, 2, &t, &make);
            let mut last = 0.0;
            while !env.done() {
                last = env.step(node).rf;
            }
            last
        };
        let run_spread = || {
            let mut env = make_env(&s, 2, &t, &make);
            let mut i = 0;
            let mut last = 0.0;
            while !env.done() {
                last = env.step(i % 2).rf;
                i += 1;
            }
            last
        };
        let piled = run_all_on(0);
        let spread = run_spread();
        assert!(
            spread > piled,
            "spreading must earn a larger terminal bonus: {spread} vs {piled}"
        );
    }

    #[test]
    fn reset_restores_the_initial_state_exactly() {
        let s = suite();
        let t = skewed_trace(&s, 10, 5);
        let make = dispatcher_maker();
        let mut env = make_env(&s, 3, &t, &make);
        let mut before = Vec::new();
        env.state_into(&mut before);
        while !env.done() {
            env.step(1);
        }
        env.reset();
        assert!(!env.done());
        let mut after = Vec::new();
        env.state_into(&mut after);
        assert_eq!(before, after);
    }

    #[test]
    fn single_node_cluster_has_an_action_space_of_one() {
        let s = suite();
        let t = skewed_trace(&s, 6, 2);
        let make = dispatcher_maker();
        let mut env = make_env(&s, 1, &t, &make);
        assert_eq!(env.n_actions(), 1);
        assert_eq!(env.state_dim(), 4);
        while !env.done() {
            assert_eq!(env.valid_mask(), 0b1);
            let out = env.step(0);
            assert_eq!(out.ri_mean, 0.0, "the only node is always the best node");
        }
        let outcome = env.into_decision();
        assert!(outcome.assignment.iter().all(|&n| n == 0));
        // And it reproduces the least-loaded single-node schedule.
        let mut ll = LeastLoaded;
        let direct = MultiNodeSim::new(1, 2).run(&s, t.clone(), &mut ll, |_| {
            CoSchedulingDispatcher::new(MpsOnly, 4, 4)
        });
        assert_eq!(outcome.report.unwrap(), direct);
    }

    #[test]
    fn saturated_nodes_stay_placeable() {
        // All nodes busy (zero free GPUs) must NOT mask anything:
        // placement queues, it never dead-ends.
        let s = suite();
        // A burst far larger than cluster capacity at t = 0.
        let t: Vec<ClusterJob> = (0..12)
            .map(|i| ClusterJob::new(i, "lavaMD", 0.0, 1, &s))
            .collect();
        let make = dispatcher_maker();
        let mut env = make_env(&s, 2, &t, &make);
        let mut saw_saturated = false;
        while !env.done() {
            if env.loads().iter().all(|l| l.free_gpus == 0) {
                saw_saturated = true;
            }
            assert_eq!(env.valid_mask(), 0b11, "saturation must not mask");
            env.step(0);
        }
        // The 2-GPU cluster saturates only once the first window
        // dispatches — at the t = 0 barrier all GPUs are still free, so
        // drive the episode to completion and check the queues cleared.
        let outcome = env.into_decision();
        assert_eq!(outcome.report.unwrap().completed_jobs(), 12);
        let _ = saw_saturated; // informational; saturation timing is dispatcher-dependent
    }

    #[test]
    fn wide_jobs_mask_too_small_nodes() {
        let s = suite();
        let t = vec![ClusterJob::new(0, "lavaMD", 0.0, 2, &s)];
        let make = dispatcher_maker();
        let env = make_env(&s, 2, &t, &make);
        // Both nodes have 2 GPUs, so both fit.
        assert_eq!(env.valid_mask(), 0b11);
    }

    #[test]
    fn greedy_env_rollout_matches_policy_selector_deployment() {
        // The core equivalence: rolling the env greedily with a frozen
        // agent must produce the same placements — and therefore the
        // bit-identical timeline — as deploying that agent's
        // PolicySelector inside MultiNodeSim.
        let s = suite();
        let cfg = PlacementConfig::quick();
        let agent = PlacementAgent::untrained(cfg.clone());
        let t = skewed_trace(&s, 20, 9);
        let outcome = agent.greedy_placements(&s, &t);
        let mut sel = agent.selector();
        let direct =
            MultiNodeSim::new(cfg.nodes, cfg.gpus_per_node)
                .run(&s, t.clone(), &mut sel, |_| cfg.node_dispatcher());
        assert_eq!(outcome.report.unwrap(), direct);
    }

    #[test]
    fn policy_selector_digest_invariant_to_rng_removal() {
        // PolicySelector used to seed and thread a SmallRng through its
        // ε = 0 selections even though it was never consulted; this
        // pins that the RNG-free fast path makes every decision — and
        // therefore the merged cluster timeline — identical to the
        // reference `QNet::predict` + lowest-index argmax.
        use hrp_core::rl::GreedyPolicy;
        struct Reference {
            net: hrp_nn::QNet,
        }
        impl GreedyPolicy for Reference {
            fn greedy(&mut self, state: &[f32], mask: u64) -> usize {
                let q = self.net.predict(state);
                hrp_nn::masked_argmax(&q, |a| mask & (1 << a) != 0).expect("non-empty mask")
            }
        }
        let s = suite();
        let cfg = PlacementConfig::quick();
        let agent = PlacementAgent::untrained(cfg.clone());
        let t = skewed_trace(&s, 24, 11);
        let mut fast_sel = agent.selector();
        let fast = MultiNodeSim::new(cfg.nodes, cfg.gpus_per_node).run(
            &s,
            t.clone(),
            &mut fast_sel,
            |_| cfg.node_dispatcher(),
        );
        let mut ref_sel = PolicySelector::new(Reference {
            net: agent.dqn().online_net().clone(),
        });
        let reference =
            MultiNodeSim::new(cfg.nodes, cfg.gpus_per_node)
                .run(&s, t, &mut ref_sel, |_| cfg.node_dispatcher());
        assert_eq!(fast, reference);
    }

    #[test]
    fn backfill_parameterized_env_matches_deployment() {
        // Same equivalence with the planner parameterized: EASY
        // backfilling nodes, noisy walltime estimates, and a
        // non-default queue order must all flow through both paths
        // identically.
        let s = suite();
        let mut cfg = PlacementConfig::quick();
        cfg.backfill = Some(BackfillPolicy::Easy);
        cfg.walltime_err = 0.25;
        cfg.queue_order = QueueOrder::ShortestFirst;
        let agent = PlacementAgent::untrained(cfg.clone());
        let t = skewed_trace(&s, 20, 9);
        let outcome = agent.greedy_placements(&s, &t);
        let mut sel = agent.selector();
        let direct = MultiNodeSim::new(cfg.nodes, cfg.gpus_per_node)
            .with_queue_order(cfg.queue_order)
            .run(&s, t.clone(), &mut sel, |_| cfg.node_dispatcher());
        assert_eq!(outcome.report.unwrap(), direct);
    }

    #[test]
    fn spec_round_trips_every_field() {
        let mut cfg = PlacementConfig::default_cfg();
        cfg.trace = TraceConfig::new(TraceKind::HeavyTail, 48, 7)
            .max_gpus(4)
            .mean_gap(2.25)
            .gang_share(0.5);
        cfg.overlap = true;
        cfg.shards = 4;
        cfg.lr = 3.3e-4;
        cfg.rf_weight = 0.125;
        cfg.hidden = vec![48, 24];
        cfg.backfill = Some(BackfillPolicy::Conservative);
        cfg.walltime_err = 0.375;
        cfg.queue_order = QueueOrder::WidestFirst;
        let decoded = decode_spec(&encode_spec(&cfg)).unwrap();
        assert_eq!(decoded, cfg);
        // The default (no backfill, arrival order) round-trips too.
        let plain = PlacementConfig::default_cfg();
        assert_eq!(decode_spec(&encode_spec(&plain)).unwrap(), plain);
    }

    #[test]
    fn checkpoint_reload_reproduces_placements_bit_for_bit() {
        let s = suite();
        let mut cfg = PlacementConfig::quick();
        cfg.episodes = 24; // enough to move the weights off init
        let (agent, _) = train_placement(&s, cfg);
        let blob = agent.save_bytes();
        let reloaded = PlacementExperiment::load_bytes(blob).unwrap();
        assert_eq!(reloaded.config(), agent.config());
        for seed in [1u64, 2, 3] {
            let t = skewed_trace(&s, 16, seed);
            let a = agent.greedy_placements(&s, &t);
            let b = reloaded.greedy_placements(&s, &t);
            assert_eq!(a.assignment, b.assignment, "trace seed {seed}");
            assert_eq!(
                a.report.unwrap().timeline.digest(),
                b.report.unwrap().timeline.digest()
            );
        }
    }

    #[test]
    fn load_rejects_garbage_and_bad_versions() {
        assert!(matches!(
            PlacementExperiment::load_bytes(Bytes::from_static(b"nope")),
            Err(CheckpointError::NotACheckpoint)
        ));
        let agent = PlacementAgent::untrained(PlacementConfig::quick());
        let mut raw = BytesMut::from(&agent.save_bytes()[..]);
        raw[4] = 99;
        assert!(matches!(
            PlacementExperiment::load_bytes(raw.freeze()),
            Err(CheckpointError::BadVersion(_))
        ));
    }

    #[test]
    #[should_panic(expected = "needs 4 GPUs")]
    fn oversized_jobs_are_rejected_at_construction() {
        let s = suite();
        let t = vec![ClusterJob::new(0, "lavaMD", 0.0, 4, &s)];
        let make = dispatcher_maker();
        let _ = make_env(&s, 2, &t, &make);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_traces_are_rejected() {
        let s = suite();
        let t = vec![
            ClusterJob::new(0, "stream", 5.0, 1, &s),
            ClusterJob::new(1, "stream", 0.0, 1, &s),
        ];
        let make = dispatcher_maker();
        let _ = make_env(&s, 2, &t, &make);
    }
}
