//! The instantaneous co-run rate model.
//!
//! Given a compiled partition and the applications currently occupying its
//! slots, [`corun_rates`] computes each application's progress rate
//! relative to its solo full-GPU run. The model composes three effects:
//!
//! 1. **Compute throttling** — slot `i` holds a fraction `c_i` of the SMs;
//!    its compute-limited rate is the roofline leg
//!    `min(1, S_i(c_i) / u_i)` where `S_i` is the Amdahl speedup and
//!    `u_i` the app's compute requirement ([`AppModel::compute_rate`]).
//! 2. **Bandwidth sharing** — within one memory domain, apps demand
//!    `d_i = b_i · r_i^comp` of the full-GPU bandwidth. The domain's pool
//!    `M` is divided **max–min fairly** (water-filling): apps demanding
//!    less than the fair share are fully served; the remainder is split
//!    among the heavy demanders. An app granted `g_i` runs at
//!    `r_i^comp · min(1, g_i / d_i)`.
//! 3. **Interference** — apps in the same domain additionally suffer
//!    `1 / (1 + σ_i · T_f)` where `T_f` is the *foreign* granted traffic in
//!    their domain, and a co-residency factor `1 / (1 + κ_i · (m − 1)²)`
//!    for the `m` clients sharing the domain. The quadratic growth models
//!    queueing at the shared LLC/DRAM controllers: two clients contend
//!    mildly, four thrash — the cost MPS cannot isolate but MIG's
//!    private memory eliminates. This asymmetry reproduces the paper's
//!    Fig. 4 and caps the profitability of wide MPS-only groups, which
//!    is what makes *hierarchical* partitioning (several small domains)
//!    the winning shape for large co-run groups (paper Fig. 5).
//!
//! Rates are dimensionless: 1.0 means "progressing as fast as a solo run
//! on the full GPU".

use crate::app::AppModel;
use crate::partition::CompiledPartition;

/// Maximum co-runners per domain we stack-allocate for.
const MAX_LANES: usize = 16;

/// Compute the instantaneous progress rate of each application.
///
/// `occupants[k] = (app, slot)` places `app` on `part.slots[slot]`; slots
/// not mentioned are idle. Returns one rate per occupant, in input order.
///
/// # Panics
/// Panics if a slot index is out of range or used twice (the engine
/// validates assignments before calling).
#[must_use]
pub fn corun_rates(occupants: &[(&AppModel, usize)], part: &CompiledPartition) -> Vec<f64> {
    let n = occupants.len();
    let mut rates = vec![0.0; n];
    if n == 0 {
        return rates;
    }
    debug_assert!(
        {
            let mut seen = vec![false; part.slots.len()];
            occupants.iter().all(|&(_, s)| {
                let fresh = !seen[s];
                seen[s] = true;
                fresh
            })
        },
        "slot used twice"
    );

    // Process domain by domain.
    for (dom_idx, dom) in part.domains.iter().enumerate() {
        // Indices of occupants in this domain.
        let mut members: [usize; MAX_LANES] = [0; MAX_LANES];
        let mut m = 0;
        for (k, &(_, slot)) in occupants.iter().enumerate() {
            if part.slots[slot].domain == dom_idx {
                assert!(m < MAX_LANES, "too many co-runners in one domain");
                members[m] = k;
                m += 1;
            }
        }
        if m == 0 {
            continue;
        }
        let members = &members[..m];

        // Compute-limited rates and bandwidth demands.
        let mut comp = [0.0f64; MAX_LANES];
        let mut demand = [0.0f64; MAX_LANES];
        for (j, &k) in members.iter().enumerate() {
            let (app, slot) = occupants[k];
            comp[j] = app.compute_rate(part.slots[slot].compute_frac);
            demand[j] = app.bandwidth_at_rate(comp[j]);
        }

        // Max–min fair bandwidth grant (water-filling).
        let mut grant = [0.0f64; MAX_LANES];
        let mut satisfied = [false; MAX_LANES];
        let mut remaining = dom.bandwidth_frac;
        let mut unsat = m;
        loop {
            if unsat == 0 || remaining <= 1e-15 {
                break;
            }
            let fair = remaining / unsat as f64;
            let mut any_below = false;
            for j in 0..m {
                if !satisfied[j] && demand[j] <= fair + 1e-15 {
                    grant[j] = demand[j];
                    remaining -= demand[j];
                    satisfied[j] = true;
                    unsat -= 1;
                    any_below = true;
                }
            }
            if !any_below {
                // Everyone left is heavy: equal split.
                for j in 0..m {
                    if !satisfied[j] {
                        grant[j] = fair;
                        satisfied[j] = true;
                    }
                }
                remaining = 0.0;
                unsat = 0;
            }
        }

        // Total granted traffic in the domain (for the interference term).
        let total_traffic: f64 = grant[..m].iter().sum();

        for (j, &k) in members.iter().enumerate() {
            let (app, _) = occupants[k];
            let mem_factor = if demand[j] <= 1e-15 {
                1.0
            } else {
                (grant[j] / demand[j]).min(1.0)
            };
            let foreign = (total_traffic - grant[j]).max(0.0);
            let interference = 1.0 / (1.0 + app.interference_sensitivity * foreign);
            let peers = (m - 1) as f64;
            let crowding = 1.0 / (1.0 + app.crowd_sensitivity * peers * peers);
            rates[k] = comp[j] * mem_factor * interference * crowding;
        }
    }
    rates
}

/// Rate of a single app running alone on a (possibly partial) slot.
#[must_use]
pub fn solo_rate(app: &AppModel, compute_frac: f64, bandwidth_frac: f64) -> f64 {
    let comp = app.compute_rate(compute_frac);
    let demand = app.bandwidth_at_rate(comp);
    let mem_factor = if demand <= 1e-15 {
        1.0
    } else {
        (bandwidth_frac / demand).min(1.0)
    };
    comp * mem_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use crate::partition::PartitionScheme;

    /// `u` is the roofline compute requirement (see `AppModel::compute_demand`).
    /// Co-residency sensitivity is zeroed so tests isolate the effect
    /// under study; `crowding_penalises_wide_domains` covers it.
    fn app(name: &str, f: f64, u: f64, b: f64, sigma: f64) -> AppModel {
        AppModel::builder(name)
            .parallel_fraction(f)
            .compute_demand(u)
            .mem_demand(b)
            .interference_sensitivity(sigma)
            .crowd_sensitivity(0.0)
            .build()
    }

    fn compile(s: PartitionScheme) -> CompiledPartition {
        s.compile(&GpuArch::a100()).unwrap()
    }

    #[test]
    fn solo_full_gpu_rate_is_one() {
        let a = app("a", 0.95, 0.8, 0.9, 0.2);
        let part = compile(PartitionScheme::exclusive());
        let r = corun_rates(&[(&a, 0)], &part);
        assert!((r[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_occupancy_is_empty() {
        let part = compile(PartitionScheme::exclusive());
        assert!(corun_rates(&[], &part).is_empty());
    }

    #[test]
    fn compute_bound_pair_shares_cleanly() {
        // Two compute-bound apps with ample bandwidth: each runs at its
        // roofline compute rate, essentially no memory effects.
        let a = app("a", 0.95, 0.9, 0.1, 0.05);
        let b = app("b", 0.95, 0.9, 0.1, 0.05);
        let part = compile(PartitionScheme::mps_only(vec![0.5, 0.5]));
        let r = corun_rates(&[(&a, 0), (&b, 1)], &part);
        let expect = a.compute_rate(0.5);
        // Only the small interference term separates them.
        assert!((r[0] - expect).abs() < 0.02, "{} vs {expect}", r[0]);
        assert!((r[0] - r[1]).abs() < 1e-12);
    }

    #[test]
    fn complementary_mix_is_efficient() {
        // CI app (low bandwidth) + MI app (low compute need): a skewed
        // compute split serves both well — the heart of paper Fig. 3.
        let ci = app("ci", 0.97, 0.9, 0.15, 0.05);
        let mi = app("mi", 0.95, 0.25, 0.95, 0.25);
        let part = compile(PartitionScheme::mps_only(vec![0.8, 0.2]));
        let r = corun_rates(&[(&ci, 0), (&mi, 1)], &part);
        // Both should keep the majority of their solo speed.
        assert!(r[0] > 0.7, "CI rate {}", r[0]);
        assert!(r[1] > 0.55, "MI rate {}", r[1]);
        // Combined throughput beats time sharing (sum of rates > 1).
        assert!(r[0] + r[1] > 1.3, "sum {}", r[0] + r[1]);
    }

    #[test]
    fn bandwidth_saturation_throttles_heavy_apps() {
        let m1 = app("m1", 0.95, 0.3, 0.9, 0.0);
        let m2 = app("m2", 0.95, 0.3, 0.9, 0.0);
        let part = compile(PartitionScheme::mps_only(vec![0.5, 0.5]));
        let r = corun_rates(&[(&m1, 0), (&m2, 1)], &part);
        // Each could run near full speed (compute ok) but joint demand
        // ~1.8 > 1 ⇒ each throttled towards 0.5/0.9 ≈ 0.56.
        assert!(r[0] < 0.65, "rate {}", r[0]);
        assert!((r[0] - r[1]).abs() < 1e-12);
    }

    #[test]
    fn max_min_fairness_protects_light_demanders() {
        // A light demander coexists with a hog: the light app must be
        // fully served.
        let light = app("light", 0.95, 0.9, 0.1, 0.0);
        let hog = app("hog", 0.95, 0.3, 1.0, 0.0);
        let part = compile(PartitionScheme::mps_only(vec![0.5, 0.5]));
        let r = corun_rates(&[(&light, 0), (&hog, 1)], &part);
        let light_solo = light.compute_rate(0.5);
        assert!((r[0] - light_solo).abs() < 1e-9, "light fully served");
        // The hog absorbs the leftover bandwidth, no more.
        assert!(r[1] < 1.0);
    }

    #[test]
    fn mig_isolation_removes_interference() {
        // Same compute split, shared vs private memory: the private
        // option wins for interference-sensitive apps (paper Fig. 4).
        let m1 = app("m1", 0.9, 0.4, 0.8, 0.35);
        let m2 = app("m2", 0.9, 0.4, 0.8, 0.35);

        let shared = compile(PartitionScheme::mig_shared_3_4());
        let rs = corun_rates(&[(&m1, 0), (&m2, 1)], &shared);

        let private = compile(PartitionScheme::mig_private_3_4());
        let rp = corun_rates(&[(&m1, 0), (&m2, 1)], &private);

        let shared_tp = rs[0] + rs[1];
        let private_tp = rp[0] + rp[1];
        assert!(
            private_tp > shared_tp,
            "private {private_tp} ≤ shared {shared_tp}"
        );
    }

    #[test]
    fn interference_hits_sensitive_apps_only() {
        let tough = app("tough", 0.9, 0.6, 0.6, 0.0);
        let fragile = app("fragile", 0.9, 0.6, 0.6, 0.5);
        let part = compile(PartitionScheme::mps_only(vec![0.5, 0.5]));
        let r = corun_rates(&[(&tough, 0), (&fragile, 1)], &part);
        assert!(r[0] > r[1], "sensitive app slower: {} vs {}", r[0], r[1]);
    }

    #[test]
    fn rates_bounded_by_one() {
        let apps = [
            app("a", 0.99, 0.95, 0.9, 0.3),
            app("b", 0.5, 0.5, 0.2, 0.1),
            app("c", 0.01, 0.15, 0.05, 0.0),
            app("d", 0.9, 0.3, 1.0, 0.4),
        ];
        let part = compile(PartitionScheme::hierarchical_3_4(
            vec![0.5, 0.5],
            vec![0.3, 0.7],
        ));
        let occ: Vec<(&AppModel, usize)> = apps.iter().enumerate().map(|(i, a)| (a, i)).collect();
        for r in corun_rates(&occ, &part) {
            assert!(r > 0.0 && r <= 1.0 + 1e-9, "rate {r}");
        }
    }

    #[test]
    fn solo_rate_matches_corun_of_one() {
        let a = app("a", 0.9, 0.7, 0.7, 0.2);
        let part = compile(PartitionScheme::mig_private_3_4());
        let r = corun_rates(&[(&a, 0)], &part);
        let s = solo_rate(&a, 0.375, 0.5);
        assert!((r[0] - s).abs() < 1e-12);
    }

    #[test]
    fn unscalable_app_insensitive_to_compute_share() {
        // US apps (tiny parallel fraction, small demands) run at nearly
        // full speed on any slot — the paper's classification criterion.
        let us = app("us", 0.01, 0.15, 0.05, 0.0);
        let big = compile(PartitionScheme::mps_only(vec![0.9, 0.1]));
        let r_big = corun_rates(&[(&us, 0)], &big);
        let r_small = corun_rates(&[(&us, 1)], &big);
        assert!((r_big[0] - r_small[0]).abs() < 0.07);
        assert!(r_small[0] > 0.9, "{}", r_small[0]);
    }

    #[test]
    fn crowding_penalises_wide_domains() {
        // Four identical undemanding apps: alone each runs at full rate;
        // packed into one domain each pays the co-residency factor
        // 1/(1 + κ·3²); split across two domains only 1/(1 + κ).
        let mk = |name: &str| {
            AppModel::builder(name)
                .parallel_fraction(0.2)
                .compute_demand(0.4)
                .mem_demand(0.1)
                .interference_sensitivity(0.0)
                .crowd_sensitivity(0.15)
                .build()
        };
        let apps = [mk("a"), mk("b"), mk("c"), mk("d")];
        let occ: Vec<(&AppModel, usize)> = apps.iter().enumerate().map(|(i, a)| (a, i)).collect();

        let one_domain = compile(PartitionScheme::mps_only(vec![0.25; 4]));
        let r1 = corun_rates(&occ, &one_domain);
        let expect1 = 1.0 / (1.0 + 0.15 * 9.0);
        assert!((r1[0] - expect1).abs() < 0.02, "{} vs {expect1}", r1[0]);

        let two_domains = compile(PartitionScheme::hierarchical_3_4(
            vec![0.5, 0.5],
            vec![0.5, 0.5],
        ));
        let r2 = corun_rates(&occ, &two_domains);
        let expect2 = 1.0 / (1.0 + 0.15);
        assert!((r2[0] - expect2).abs() < 0.03, "{} vs {expect2}", r2[0]);
        assert!(r2[0] > r1[0], "isolation must relieve crowding");
    }

    #[test]
    fn more_compute_never_hurts() {
        // The rate model is monotone in the compute fraction.
        let a = app("a", 0.9, 0.7, 0.5, 0.1);
        for w in [0.1, 0.2, 0.3, 0.4].windows(2) {
            let lo = solo_rate(&a, w[0], 1.0);
            let hi = solo_rate(&a, w[1], 1.0);
            assert!(hi >= lo, "rate must grow with compute: {lo} vs {hi}");
        }
    }
}
