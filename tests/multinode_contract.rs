//! Property tests (proptest) for the multi-node cluster simulator's
//! determinism contract:
//!
//! * the merged cluster timeline is invariant to node-simulation order
//!   and thread count (`--threads 1` vs `HRP_TEST_THREADS` vs auto);
//! * a one-node cluster is event-for-event identical to the
//!   single-node simulator on the same trace;
//! * completed jobs are conserved across any selector: every job
//!   arrives once, starts once, and finishes once;
//! * the epoch fan-out mode — serial, persistent worker pool, or the
//!   legacy per-epoch scoped spawn — never moves an event;
//! * the chunked optimistic engine reproduces the per-instant barrier
//!   timeline bit-for-bit for arbitrary chunk widths, selectors,
//!   trace kinds, and thread counts — and at scale does strictly less
//!   synchronization work (the reported `SyncStats` counters).
//!
//! (`tests/trace_contract.rs` extends the same guarantees to generated
//! traces and the RL `PolicySelector`.)
//!
//! Set `HRP_TEST_THREADS` to pick the parallel worker count the
//! invariance cases exercise (CI runs the suite under 1 and 4).

mod common;
use common::test_threads;

use hrp::cluster::multinode::MultiNodeSim;
use hrp::cluster::select::{LeastLoaded, RoundRobin};
use hrp::cluster::sim::{ClusterSim, EventKind};
use hrp::cluster::trace::{generate, TraceConfig, TraceKind};
use hrp::cluster::{ClusterJob, CoSchedulingDispatcher, FcfsBackfill, SelectorKind};
use hrp::prelude::*;
use proptest::prelude::*;

fn suite() -> Suite {
    Suite::paper_suite(&GpuArch::a100())
}

/// Build a trace from a generated shape: benchmark pick, arrival slot
/// (duplicates produce simultaneous-arrival bursts), and width.
fn trace(s: &Suite, shape: &[(usize, u32, bool)]) -> Vec<ClusterJob> {
    shape
        .iter()
        .enumerate()
        .map(|(i, (pick, slot, wide))| {
            let name = s.by_index(pick % s.len()).app.name.clone();
            let gpus = if *wide { 2 } else { 1 };
            ClusterJob::new(i, &name, f64::from(*slot) * 3.0, gpus, s)
        })
        .collect()
}

fn dispatcher() -> CoSchedulingDispatcher<MpsOnly> {
    CoSchedulingDispatcher::new(MpsOnly, 4, 4)
}

fn shape_strategy() -> impl Strategy<Value = Vec<(usize, u32, bool)>> {
    proptest::collection::vec((0usize..1000, 0u32..5, any::<bool>()), 1..=9)
}

proptest! {
    #[test]
    fn merged_timeline_is_invariant_to_thread_count(
        shape in shape_strategy(),
        nodes in 1usize..=4,
        least_loaded in any::<bool>(),
    ) {
        let s = suite();
        let kind = if least_loaded { SelectorKind::LeastLoaded } else { SelectorKind::RoundRobin };
        let run = |threads: usize| {
            let mut sel = kind.build();
            MultiNodeSim::new(nodes, 2)
                .with_threads(threads)
                .run(&s, trace(&s, &shape), sel.as_mut(), |_| dispatcher())
        };
        let serial = run(1);
        for threads in [test_threads(), 0] {
            let got = run(threads);
            prop_assert_eq!(&got.timeline.events, &serial.timeline.events,
                "timeline drifted at {} threads", threads);
            prop_assert_eq!(&got.per_node, &serial.per_node);
            prop_assert_eq!(&got.aggregate, &serial.aggregate);
            prop_assert_eq!(got.timeline.digest(), serial.timeline.digest());
        }
    }

    #[test]
    fn one_node_cluster_is_event_for_event_the_single_node_simulator(
        shape in shape_strategy(),
        least_loaded in any::<bool>(),
    ) {
        let s = suite();
        let multi = if least_loaded {
            let mut sel = LeastLoaded;
            MultiNodeSim::new(1, 2)
                .with_threads(test_threads())
                .run(&s, trace(&s, &shape), &mut sel, |_| dispatcher())
        } else {
            let mut sel = RoundRobin::default();
            MultiNodeSim::new(1, 2)
                .with_threads(test_threads())
                .run(&s, trace(&s, &shape), &mut sel, |_| dispatcher())
        };
        let mut single = dispatcher();
        let (report, events) = ClusterSim::new(2).run_traced(&s, trace(&s, &shape), &mut single);
        prop_assert_eq!(&multi.timeline.events, &events, "event streams diverged");
        prop_assert_eq!(&multi.aggregate, &report, "reports diverged");
        // Bitwise, not approximately: the N = 1 path must *be* the
        // single-node simulator.
        prop_assert_eq!(multi.aggregate.makespan.to_bits(), report.makespan.to_bits());
        prop_assert_eq!(multi.aggregate.avg_wait.to_bits(), report.avg_wait.to_bits());
        prop_assert_eq!(multi.aggregate.utilization.to_bits(), report.utilization.to_bits());
    }

    #[test]
    fn fanout_modes_never_move_an_event(
        shape in shape_strategy(),
        nodes in 1usize..=4,
    ) {
        // Serial, pooled (the with_threads default), shared pool, and
        // the legacy per-epoch spawn must all merge to one timeline.
        let s = suite();
        let threads = test_threads();
        let run = |sim: MultiNodeSim| {
            let mut sel = SelectorKind::LeastLoaded.build();
            sim.run(&s, trace(&s, &shape), sel.as_mut(), |_| dispatcher())
        };
        let serial = run(MultiNodeSim::new(nodes, 2));
        let pooled = run(MultiNodeSim::new(nodes, 2).with_threads(threads));
        let spawned = run(MultiNodeSim::new(nodes, 2).with_threads(threads).with_epoch_spawn());
        let shared = run(MultiNodeSim::new(nodes, 2)
            .with_pool(std::sync::Arc::new(hrp::core::par::WorkerPool::new(threads))));
        prop_assert_eq!(&pooled, &serial, "pooled fan-out drifted");
        prop_assert_eq!(&spawned, &serial, "per-epoch spawn drifted");
        prop_assert_eq!(&shared, &serial, "shared-pool fan-out drifted");
    }

    #[test]
    fn chunked_engine_reproduces_the_barrier_timeline(
        shape in shape_strategy(),
        nodes in 1usize..=4,
        least_loaded in any::<bool>(),
        // Spans sub-instant widths (every chunk is one arrival burst)
        // through widths swallowing the whole trace in one chunk.
        chunk_width in (0.1f64..40.0, 0usize..4)
            .prop_map(|(w, pick)| if pick == 0 { 1e9 } else { w }),
    ) {
        let s = suite();
        let kind = if least_loaded { SelectorKind::LeastLoaded } else { SelectorKind::RoundRobin };
        let barrier = {
            let mut sel = kind.build();
            MultiNodeSim::new(nodes, 2)
                .with_threads(1)
                .run(&s, trace(&s, &shape), sel.as_mut(), |_| dispatcher())
        };
        for threads in [1, test_threads()] {
            let mut sel = kind.build();
            let chunked = MultiNodeSim::new(nodes, 2)
                .with_threads(threads)
                .with_chunk_width(chunk_width)
                .run(&s, trace(&s, &shape), sel.as_mut(), |_| dispatcher());
            prop_assert_eq!(&chunked.timeline.events, &barrier.timeline.events,
                "chunked timeline drifted (width {}, {} threads)", chunk_width, threads);
            prop_assert_eq!(chunked.timeline.digest(), barrier.timeline.digest());
            prop_assert_eq!(&chunked.per_node, &barrier.per_node);
            prop_assert_eq!(&chunked.aggregate, &barrier.aggregate);
            // Speculation bookkeeping is internally consistent.
            prop_assert_eq!(
                chunked.sync.clean_commits + chunked.sync.rollbacks,
                chunked.sync.speculations
            );
        }
    }

    #[test]
    fn chunked_engine_handles_generated_trace_kinds(
        kind_idx in 0usize..6,
        n_jobs in 1usize..=48,
        seed in 0u64..u64::MAX,
        chunk_width in 0.5f64..200.0,
    ) {
        // The generator kinds stress patterns the synthetic shapes
        // don't: bursts of simultaneous arrivals, heavy-tail gaps,
        // zipf-skewed benchmark picks.
        let s = suite();
        let kinds = [
            TraceKind::Uniform, TraceKind::Bursty, TraceKind::Skewed,
            TraceKind::HeavyTail, TraceKind::Colocate, TraceKind::Staggered,
        ];
        let jobs = generate(&s, &TraceConfig::new(kinds[kind_idx], n_jobs, seed).max_gpus(2));
        let run = |width: Option<f64>| {
            let mut sel = SelectorKind::LeastLoaded.build();
            let mut sim = MultiNodeSim::new(3, 2).with_threads(test_threads());
            if let Some(w) = width {
                sim = sim.with_chunk_width(w);
            }
            sim.run(&s, jobs.clone(), sel.as_mut(), |_| FcfsBackfill::new())
        };
        let barrier = run(None);
        let chunked = run(Some(chunk_width));
        prop_assert_eq!(&chunked.timeline.events, &barrier.timeline.events,
            "{} trace drifted under chunking", kinds[kind_idx].name());
        prop_assert_eq!(&chunked.aggregate, &barrier.aggregate);
    }

    #[test]
    fn completed_jobs_are_conserved_for_any_selector(
        shape in shape_strategy(),
        nodes in 1usize..=4,
        least_loaded in any::<bool>(),
    ) {
        let s = suite();
        let kind = if least_loaded { SelectorKind::LeastLoaded } else { SelectorKind::RoundRobin };
        let mut sel = kind.build();
        let report = MultiNodeSim::new(nodes, 2)
            .with_threads(test_threads())
            .run(&s, trace(&s, &shape), sel.as_mut(), |_| dispatcher());
        let n = shape.len();
        let mut arrived = vec![0usize; n];
        let mut started = vec![0usize; n];
        let mut finished = vec![0usize; n];
        for e in &report.timeline.events {
            match &e.kind {
                EventKind::Arrival { job } => arrived[*job] += 1,
                EventKind::Start { job_ids, .. } => {
                    for id in job_ids {
                        started[*id] += 1;
                    }
                }
                EventKind::Finish { job_ids, .. } => {
                    for id in job_ids {
                        finished[*id] += 1;
                    }
                }
            }
        }
        prop_assert!(arrived.iter().all(|&c| c == 1), "every job arrives exactly once");
        prop_assert!(started.iter().all(|&c| c == 1), "every job starts exactly once");
        prop_assert!(finished.iter().all(|&c| c == 1), "every job finishes exactly once");
        prop_assert_eq!(report.completed_jobs(), n);
        let routed: usize = report.per_node.iter().map(|p| p.jobs).sum();
        prop_assert_eq!(routed, n, "selector routed every job somewhere");
        prop_assert_eq!(
            report.aggregate.placements,
            report.per_node.iter().map(|p| p.placements).sum::<usize>()
        );
    }
}

/// The at-scale acceptance pin: on a 100k-job bursty trace across 8
/// FCFS nodes at 4 threads, the chunked engine merges to the exact
/// barrier timeline while doing strictly less barrier-synchronization
/// work — fewer fan-out rounds *and* fewer per-node advance calls,
/// straight from the reported counters.
#[test]
fn chunked_engine_does_strictly_less_sync_work_at_100k_jobs() {
    let s = suite();
    let jobs = generate(
        &s,
        &TraceConfig::new(TraceKind::Bursty, 100_000, 42).max_gpus(2),
    );
    let run = |width: Option<f64>| {
        let mut sel = SelectorKind::LeastLoaded.build();
        let mut sim = MultiNodeSim::new(8, 2).with_threads(4);
        if let Some(w) = width {
            sim = sim.with_chunk_width(w);
        }
        sim.run(&s, jobs.clone(), sel.as_mut(), |_| FcfsBackfill::new())
    };
    let barrier = run(None);
    let chunked = run(Some(64.0));
    assert_eq!(chunked.timeline.digest(), barrier.timeline.digest());
    assert_eq!(chunked.aggregate, barrier.aggregate);
    assert_eq!(chunked.completed_jobs(), 100_000);
    assert!(
        chunked.sync.sync_rounds < barrier.sync.sync_rounds,
        "chunked must synchronize less: {} vs {} rounds",
        chunked.sync.sync_rounds,
        barrier.sync.sync_rounds
    );
    assert!(
        chunked.sync.node_advances < barrier.sync.node_advances,
        "chunked must advance less: {} vs {}",
        chunked.sync.node_advances,
        barrier.sync.node_advances
    );
    // The chunk count bounds the round count: speculate rounds plus
    // the final drain round.
    assert!(chunked.sync.chunks > 0);
    assert!(chunked.sync.sync_rounds <= chunked.sync.chunks + 1);
}
