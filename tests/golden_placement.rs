//! Golden regression + acceptance pin for the simulation-backed
//! placement training loop, in the style of `tests/golden_train.rs`.
//!
//! One `PlacementConfig::quick()` training run (240 episodes over six
//! seed-derived 32-job skewed traces, 4 nodes × 2 GPUs) is pinned by
//! its `TrainReport`, a probe Q-value of the trained network, and the
//! greedy placements + merged-timeline digest on the held-out skewed
//! evaluation trace — so any drift in the trace generators, the
//! drive/env stepping, the reward definition, or the pipeline shows up
//! here. Golden values captured from the initial `place` module
//! implementation.
//!
//! The same run doubles as the acceptance gate: on the held-out skewed
//! trace the trained policy must beat round-robin and match-or-beat
//! least-loaded on simulated makespan, bit-identically for any rollout
//! worker count and simulation thread count.

mod common;
use common::test_threads;

use hrp::cluster::multinode::MultiNodeSim;
use hrp::cluster::place::{train_placement, PlacementConfig};
use hrp::cluster::trace::{generate, TraceConfig, TraceKind, EVAL_SEED_OFFSET};
use hrp::cluster::{ClusterJob, SelectorKind};
use hrp::core::train::TrainReport;
use hrp::prelude::*;

/// The held-out evaluation trace `repro cluster --trace skewed` uses at
/// `--quick` scale (seed offset keeps it out of the training stream).
fn eval_trace(suite: &Suite) -> Vec<ClusterJob> {
    generate(
        suite,
        &TraceConfig::new(TraceKind::Skewed, 48, 42 ^ EVAL_SEED_OFFSET).max_gpus(2),
    )
}

/// Captured from the initial implementation (see module docs).
fn golden_report() -> TrainReport {
    TrainReport {
        episodes: 240,
        total_steps: 7680,
        early_return: GOLDEN_EARLY,
        late_return: GOLDEN_LATE,
        late_rf: GOLDEN_LATE_RF,
        max_snapshot_lag: 0,
    }
}

const GOLDEN_EARLY: f64 = f64::from_bits(0xc031e1b3ca6fe997); // -17.881649…
const GOLDEN_LATE: f64 = f64::from_bits(0xbfac5c9f682fd364); // -0.055394…
const GOLDEN_LATE_RF: f64 = f64::from_bits(0x3f8c4b5b935a127b); // 0.013815…
const GOLDEN_Q0: u32 = 0xbec4bda0; // -0.384258…
const GOLDEN_DIGEST: u64 = 0xc6311db29b592377;
const GOLDEN_MAKESPAN: u64 = 0x4077481f30b4ea7c; // 372.507…

#[test]
fn quick_placement_training_matches_the_golden_pin() {
    let suite = Suite::paper_suite(&GpuArch::a100());
    let (agent, report) = train_placement(&suite, PlacementConfig::quick());
    if std::env::var("HRP_CAPTURE_GOLDEN").is_ok() {
        let trace = eval_trace(&suite);
        let outcome = agent.greedy_placements(&suite, &trace);
        let rep = outcome.report.as_ref().unwrap();
        eprintln!("total_steps: {}", report.total_steps);
        eprintln!("early_return: {:#018x}", report.early_return.to_bits());
        eprintln!("late_return: {:#018x}", report.late_return.to_bits());
        eprintln!("late_rf: {:#018x}", report.late_rf.to_bits());
        let probe = vec![0.25f32; 10];
        eprintln!("q0: {:#010x}", agent.dqn().q_values(&probe)[0].to_bits());
        eprintln!("digest: {:#018x}", rep.timeline.digest());
        eprintln!("makespan: {:#018x}", rep.aggregate.makespan.to_bits());
        eprintln!("assignment: {:?}", outcome.assignment);
    }
    assert_eq!(report, golden_report(), "TrainReport drifted");

    let probe = vec![0.25f32; 10];
    let q = agent.dqn().q_values(&probe);
    assert_eq!(
        q[0].to_bits(),
        GOLDEN_Q0,
        "trained weights drifted: q0 = {}",
        q[0]
    );

    let trace = eval_trace(&suite);
    let outcome = agent.greedy_placements(&suite, &trace);
    assert_eq!(
        outcome.assignment,
        golden_assignment(),
        "placements drifted"
    );
    let rep = outcome.report.expect("drained episode has a report");
    assert_eq!(
        rep.timeline.digest(),
        GOLDEN_DIGEST,
        "timeline digest drifted"
    );
    assert_eq!(
        rep.aggregate.makespan.to_bits(),
        GOLDEN_MAKESPAN,
        "makespan drifted: {}",
        rep.aggregate.makespan
    );
}

/// Greedy placements on the evaluation trace (one node id per job).
fn golden_assignment() -> Vec<usize> {
    vec![
        3, 2, 1, 0, 1, 3, 0, 0, 1, 2, 2, 3, 3, 1, 0, 2, 1, 0, 2, 3, 2, 2, 0, 1, 3, 3, 0, 2, 1, 0,
        1, 0, 2, 3, 0, 1, 2, 3, 2, 0, 1, 2, 3, 3, 0, 1, 3, 1,
    ]
}

#[test]
fn trained_policy_beats_round_robin_and_least_loaded_on_the_skewed_trace() {
    // The acceptance gate behind `repro cluster --selector policy
    // --trace skewed`: ground-truth rewards must actually pay off
    // against the heuristics, for any worker/thread count.
    let suite = Suite::paper_suite(&GpuArch::a100());
    let threads = test_threads();

    let mut cfg = PlacementConfig::quick();
    cfg.n_workers = 1;
    let (agent_serial, report_serial) = train_placement(&suite, cfg.clone());
    cfg.n_workers = threads;
    let (agent_par, report_par) = train_placement(&suite, cfg.clone());
    assert_eq!(
        report_serial, report_par,
        "training must be worker-count invariant"
    );
    let probe = vec![0.25f32; 10];
    assert_eq!(
        agent_serial.dqn().q_values(&probe),
        agent_par.dqn().q_values(&probe),
        "weights must be worker-count invariant"
    );

    let trace = eval_trace(&suite);
    let run = |kind: SelectorKind, threads: usize| {
        let mut policy_sel;
        let mut heur_sel;
        let sel: &mut dyn hrp::cluster::NodeSelector = if kind.needs_training() {
            policy_sel = agent_serial.selector();
            &mut policy_sel
        } else {
            heur_sel = kind.build();
            heur_sel.as_mut()
        };
        MultiNodeSim::new(cfg.nodes, cfg.gpus_per_node)
            .with_threads(threads)
            .run(&suite, trace.clone(), sel, |_| cfg.node_dispatcher())
    };

    let policy = run(SelectorKind::Policy, 1);
    let rr = run(SelectorKind::RoundRobin, 1);
    let ll = run(SelectorKind::LeastLoaded, 1);
    assert!(
        policy.aggregate.makespan < rr.aggregate.makespan,
        "policy {} must beat round-robin {}",
        policy.aggregate.makespan,
        rr.aggregate.makespan
    );
    assert!(
        policy.aggregate.makespan <= ll.aggregate.makespan,
        "policy {} must match-or-beat least-loaded {}",
        policy.aggregate.makespan,
        ll.aggregate.makespan
    );

    // The whole deployment is thread-count invariant too.
    for kind in [
        SelectorKind::Policy,
        SelectorKind::RoundRobin,
        SelectorKind::LeastLoaded,
    ] {
        let serial = run(kind, 1);
        let wide = run(kind, threads);
        assert_eq!(serial, wide, "{} deployment drifted", kind.name());
    }
}
