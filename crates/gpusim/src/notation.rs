//! Parser and printer for the paper's partition notation (§V-A5).
//!
//! > "First, a GI or the entire GPU is enclosed in square brackets. It is
//! > denoted as `[compute resource setup, assigned memory resource]`. For
//! > the memory resource part, when α×100% of the entire GPU memory
//! > bandwidth is assigned, it is denoted as `α m`. As for the compute
//! > resource setup, a CI or an MPS process is enclosed in curly brackets
//! > or parentheses, respectively."
//!
//! Examples from the paper, all accepted by [`parse_scheme`]:
//!
//! * `[(0.1)+(0.9),1m]` — MPS-only 10/90 split
//! * `[{0.375}+{0.5},1m]` — MIG 3g+4g CIs sharing memory (one 7g GI)
//! * `[{0.375},0.5m]+[{0.5},0.5m]` — private-memory MIG split
//! * `[{0.375},0.5m]+[(0.1)+(0.9),{0.5},0.5m]` — hierarchical MIG+MPS
//! * `[{0.375}+(0.1),(0.9){0.5},1m]` — hierarchical, shared memory
//!
//! The paper separates MPS clients inconsistently (`+` or `,`); the parser
//! accepts both. [`format_scheme`] always emits the canonical form
//! `(a)+(b){ci}`.

use crate::error::ParseError;
use crate::mig::GiProfile;
use crate::partition::{CiSetup, GiSetup, PartitionScheme};

/// Render a scheme in the paper's notation.
#[must_use]
pub fn format_scheme(scheme: &PartitionScheme) -> String {
    match scheme {
        PartitionScheme::MpsOnly { shares } => {
            let body = shares
                .iter()
                .map(|s| format!("({})", trim(*s)))
                .collect::<Vec<_>>()
                .join("+");
            format!("[{body},1m]")
        }
        PartitionScheme::Mig { gis } => gis
            .iter()
            .map(|gi| {
                let mem = f64::from(gi.profile.mem_slices()) / 8.0;
                let body = gi
                    .cis
                    .iter()
                    .map(|ci| {
                        let frac = f64::from(ci.slices) / 8.0;
                        if ci.mps_shares.is_empty() {
                            format!("{{{}}}", trim(frac))
                        } else {
                            let clients = ci
                                .mps_shares
                                .iter()
                                .map(|s| format!("({})", trim(*s)))
                                .collect::<Vec<_>>()
                                .join("+");
                            format!("{clients}{{{}}}", trim(frac))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("+");
                format!("[{body},{}m]", trim(mem))
            })
            .collect::<Vec<_>>()
            .join("+"),
    }
}

fn trim(x: f64) -> String {
    // Prints 1.0 as "1", 0.5 as "0.5", 0.34 as "0.34".
    let s = format!("{x}");
    s
}

/// Parse the paper's notation into a [`PartitionScheme`].
pub fn parse_scheme(input: &str) -> Result<PartitionScheme, ParseError> {
    let mut p = Parser::new(input);
    let mut gis: Vec<RawGi> = Vec::new();
    loop {
        gis.push(p.gi()?);
        p.skip_ws();
        if p.eat('+') {
            continue;
        }
        break;
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(ParseError::Unexpected {
            at: p.pos,
            found: p.peek(),
            expected: "end of input or '+'",
        });
    }
    assemble(gis)
}

/// A GI as parsed, before profile inference.
struct RawGi {
    cis: Vec<CiSetup>,
    /// MPS clients not attached to any CI brace (whole-GPU MPS).
    loose_clients: Vec<f64>,
    mem: f64,
}

fn assemble(gis: Vec<RawGi>) -> Result<PartitionScheme, ParseError> {
    // MPS-only form: one bracket, no CI braces, full memory.
    if gis.len() == 1 && gis[0].cis.is_empty() && !gis[0].loose_clients.is_empty() {
        if (gis[0].mem - 1.0).abs() > 1e-9 {
            return Err(ParseError::Invalid(
                crate::error::PartitionError::Unplaceable(
                    "MPS-only partition must own all memory (…,1m])".to_owned(),
                ),
            ));
        }
        return Ok(PartitionScheme::MpsOnly {
            shares: gis[0].loose_clients.clone(),
        });
    }
    let mut out = Vec::with_capacity(gis.len());
    for gi in gis {
        if !gi.loose_clients.is_empty() {
            return Err(ParseError::TruncatedInput);
        }
        if gi.cis.is_empty() {
            return Err(ParseError::Invalid(crate::error::PartitionError::EmptyGi));
        }
        let total: u32 = gi.cis.iter().map(|c| c.slices).sum();
        let profile = infer_profile(gi.mem, total)?;
        out.push(GiSetup {
            profile,
            cis: gi.cis,
        });
    }
    Ok(PartitionScheme::Mig { gis: out })
}

/// Choose the smallest GI profile owning memory fraction `mem` that can
/// host `total` CI slices.
fn infer_profile(mem: f64, total: u32) -> Result<GiProfile, ParseError> {
    let candidates: &[GiProfile] = if (mem - 1.0).abs() < 1e-9 {
        &[GiProfile::G7]
    } else if (mem - 0.5).abs() < 1e-9 {
        &[GiProfile::G3, GiProfile::G4]
    } else if (mem - 0.25).abs() < 1e-9 {
        &[GiProfile::G2]
    } else if (mem - 0.125).abs() < 1e-9 {
        &[GiProfile::G1]
    } else {
        return Err(ParseError::NonSliceFraction(mem));
    };
    candidates
        .iter()
        .copied()
        .find(|p| p.compute_slices() >= total)
        .ok_or(ParseError::Invalid(
            crate::error::PartitionError::CiOverflow {
                requested: total,
                available: candidates.last().map_or(0, |p| p.compute_slices()),
            },
        ))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char, what: &'static str) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                at: self.pos,
                found: self.peek(),
                expected: what,
            })
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9' | '.')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParseError::Unexpected {
                at: self.pos,
                found: self.peek(),
                expected: "number",
            });
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        s.parse::<f64>()
            .map_err(|_| ParseError::BadNumber(s.to_owned()))
    }

    /// Parse one `[ body , mem m ]` group.
    fn gi(&mut self) -> Result<RawGi, ParseError> {
        self.skip_ws();
        self.expect('[', "'['")?;
        let mut cis: Vec<CiSetup> = Vec::new();
        let mut pending: Vec<f64> = Vec::new();
        let mem;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('(') => {
                    self.pos += 1;
                    let v = self.number()?;
                    self.expect(')', "')'")?;
                    pending.push(v);
                }
                Some('{') => {
                    self.pos += 1;
                    let frac = self.number()?;
                    self.expect('}', "'}'")?;
                    let slices = frac_to_slices(frac)?;
                    if pending.is_empty() {
                        cis.push(CiSetup::exclusive(slices));
                    } else {
                        cis.push(CiSetup::with_mps(slices, std::mem::take(&mut pending)));
                    }
                }
                other => {
                    return Err(ParseError::Unexpected {
                        at: self.pos,
                        found: other,
                        expected: "'(' or '{'",
                    })
                }
            }
            self.skip_ws();
            // Separator handling: '+' continues the body; ',' either
            // continues the body (paper's loose client separator) or
            // introduces the memory part — disambiguate by lookahead.
            // A brace directly after a client list (`(0.9){0.5}`) also
            // continues the body with no separator at all.
            if matches!(self.peek(), Some('{' | '(')) {
                continue;
            }
            if self.eat('+') {
                continue;
            }
            if self.eat(',') {
                self.skip_ws();
                if matches!(self.peek(), Some('(' | '{')) {
                    continue;
                }
                mem = self.number()?;
                self.expect('m', "'m'")?;
                self.expect(']', "']'")?;
                break;
            }
            return Err(ParseError::Unexpected {
                at: self.pos,
                found: self.peek(),
                expected: "'+', ',' or memory spec",
            });
        }
        Ok(RawGi {
            cis,
            loose_clients: pending,
            mem,
        })
    }
}

fn frac_to_slices(frac: f64) -> Result<u32, ParseError> {
    let slices = frac * 8.0;
    if (slices - slices.round()).abs() > 1e-6 || slices < 0.5 {
        return Err(ParseError::NonSliceFraction(frac));
    }
    Ok(slices.round() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;

    fn roundtrip(s: &PartitionScheme) {
        let text = format_scheme(s);
        let back = parse_scheme(&text).unwrap_or_else(|e| panic!("parse '{text}': {e}"));
        assert_eq!(&back, s, "roundtrip through '{text}'");
    }

    #[test]
    fn formats_match_paper_examples() {
        assert_eq!(
            format_scheme(&PartitionScheme::mps_only(vec![0.1, 0.9])),
            "[(0.1)+(0.9),1m]"
        );
        assert_eq!(
            format_scheme(&PartitionScheme::mig_shared_3_4()),
            "[{0.375}+{0.5},1m]"
        );
        assert_eq!(
            format_scheme(&PartitionScheme::mig_private_3_4()),
            "[{0.375},0.5m]+[{0.5},0.5m]"
        );
        assert_eq!(
            format_scheme(&PartitionScheme::hierarchical_3_4(vec![], vec![0.1, 0.9])),
            "[{0.375},0.5m]+[(0.1)+(0.9){0.5},0.5m]"
        );
    }

    #[test]
    fn parses_paper_literals() {
        for text in [
            "[(0.1)+(0.9),1m]",
            "[(0.2)+(0.8),1m]",
            "[(0.34)+(0.33)+(0.33),1m]",
            "[(0.25)+(0.25)+(0.25)+(0.25),1m]",
            "[{0.375}+{0.5},1m]",
            "[{0.375},0.5m]+[{0.5},0.5m]",
            "[{0.375},0.5m]+[(0.1)+(0.9),{0.5},0.5m]",
            "[{0.375}+(0.1),(0.9){0.5},1m]",
            "[(0.1)+(0.9),{0.375},0.5m]+[(0.1)+(0.9),{0.5},0.5m]",
            "[(0.1)+(0.9){0.375}+(0.1)+(0.9){0.5},1m]",
        ] {
            let scheme = parse_scheme(text).unwrap_or_else(|e| panic!("'{text}': {e}"));
            scheme
                .compile(&GpuArch::a100())
                .unwrap_or_else(|e| panic!("'{text}' compiled: {e}"));
        }
    }

    #[test]
    fn mps_comma_and_plus_are_equivalent() {
        let a = parse_scheme("[{0.375},0.5m]+[(0.1)+(0.9),{0.5},0.5m]").unwrap();
        let b = parse_scheme("[{0.375},0.5m]+[(0.1)+(0.9){0.5},0.5m]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hierarchical_shared_parses_to_one_gi() {
        let s = parse_scheme("[{0.375}+(0.1),(0.9){0.5},1m]").unwrap();
        match &s {
            PartitionScheme::Mig { gis } => {
                assert_eq!(gis.len(), 1);
                assert_eq!(gis[0].profile, GiProfile::G7);
                assert_eq!(gis[0].cis.len(), 2);
                assert!(gis[0].cis[0].mps_shares.is_empty());
                assert_eq!(gis[0].cis[1].mps_shares, vec![0.1, 0.9]);
            }
            PartitionScheme::MpsOnly { .. } => panic!("expected MIG"),
        }
    }

    #[test]
    fn roundtrips() {
        roundtrip(&PartitionScheme::mps_only(vec![0.1, 0.9]));
        roundtrip(&PartitionScheme::mps_only(vec![0.25, 0.25, 0.25, 0.25]));
        roundtrip(&PartitionScheme::exclusive());
        roundtrip(&PartitionScheme::mig_shared_3_4());
        roundtrip(&PartitionScheme::mig_private_3_4());
        roundtrip(&PartitionScheme::hierarchical_3_4(
            vec![0.5, 0.5],
            vec![0.3, 0.7],
        ));
        roundtrip(&PartitionScheme::hierarchical_shared_3_4(
            vec![0.2, 0.8],
            vec![],
        ));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_scheme("").is_err());
        assert!(parse_scheme("[(0.5)+(0.5)]").is_err(), "missing memory");
        assert!(parse_scheme("[(0.5)+(0.5),2m]").is_err(), "mem > 1");
        assert!(parse_scheme("[{0.4},0.5m]").is_err(), "0.4 not k/8");
        assert!(
            parse_scheme("[(0.5)+(0.5),0.5m]").is_err(),
            "loose MPS w/ partial mem"
        );
        assert!(parse_scheme("[(0.5)+(0.5),1m] trailing").is_err());
        assert!(
            parse_scheme("[{0.875}+{0.125},0.5m]").is_err(),
            "CI overflow"
        );
    }

    #[test]
    fn profile_inference_prefers_smallest() {
        // A 3-slice exclusive CI with half memory → G3, not G4.
        let s = parse_scheme("[{0.375},0.5m]").unwrap();
        match s {
            PartitionScheme::Mig { gis } => assert_eq!(gis[0].profile, GiProfile::G3),
            PartitionScheme::MpsOnly { .. } => panic!(),
        }
        // A 4-slice CI with half memory → G4.
        let s = parse_scheme("[{0.5},0.5m]").unwrap();
        match s {
            PartitionScheme::Mig { gis } => assert_eq!(gis[0].profile, GiProfile::G4),
            PartitionScheme::MpsOnly { .. } => panic!(),
        }
    }
}
