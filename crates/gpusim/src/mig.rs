//! MIG (Multi-Instance GPU) profiles and placement rules.
//!
//! MIG partitions a GPU *physically* into **GPU Instances (GIs)** at GPC
//! granularity; each GI owns a set of memory slices (LLC + HBM) that become
//! private to it (paper §III-A). GIs are then subdivided into **Compute
//! Instances (CIs)** that share the GI's memory but own GPCs exclusively.
//!
//! The A100 exposes five GI profiles. Placement is constrained: profiles
//! occupy fixed slice *regions*, which is why (paper §III-A restriction 3)
//! "dividing 7 GPCs into 2+5 or 1+6 is not supported". We reproduce those
//! placement rules and derive the set of valid configurations from them.
//!
//! | profile | compute slices | memory slices | valid start slices |
//! |---------|----------------|---------------|--------------------|
//! | 1g.5gb  | 1              | 1             | 0–6                |
//! | 2g.10gb | 2              | 2             | 0, 2, 4            |
//! | 3g.20gb | 3              | 4             | 0, 4               |
//! | 4g.20gb | 4              | 4             | 0                  |
//! | 7g.40gb | 7              | 8             | 0                  |
//!
//! A `3g` at start 0 *blocks* slices 0–3 (it owns half the memory), and at
//! start 4 blocks 4–6; a `4g` blocks 0–3. The enumeration below is over
//! placements, deduplicated to profile multisets.

use crate::arch::GpuArch;
use crate::error::PartitionError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GPU-Instance profile (A100 naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GiProfile {
    /// `1g.5gb` — 1 GPC, 1/8 of memory.
    G1,
    /// `2g.10gb` — 2 GPCs, 2/8 of memory.
    G2,
    /// `3g.20gb` — 3 GPCs, 4/8 of memory (half!).
    G3,
    /// `4g.20gb` — 4 GPCs, 4/8 of memory.
    G4,
    /// `7g.40gb` — the full MIG-enabled GPU: 7 GPCs, all memory.
    G7,
}

impl GiProfile {
    /// All profiles, largest first.
    pub const ALL: [GiProfile; 5] = [Self::G7, Self::G4, Self::G3, Self::G2, Self::G1];

    /// Compute slices (GPCs) owned by the instance.
    #[must_use]
    pub fn compute_slices(self) -> u32 {
        match self {
            Self::G1 => 1,
            Self::G2 => 2,
            Self::G3 => 3,
            Self::G4 => 4,
            Self::G7 => 7,
        }
    }

    /// Memory slices owned by the instance. Note `3g` owns **4** memory
    /// slices (20 of 40 GB) — this asymmetry is visible in the paper's
    /// notation `[{0.375},0.5m]`.
    #[must_use]
    pub fn mem_slices(self) -> u32 {
        match self {
            Self::G1 => 1,
            Self::G2 => 2,
            Self::G3 => 4,
            Self::G4 => 4,
            Self::G7 => 8,
        }
    }

    /// Width of the placement region the profile blocks, in slices.
    #[must_use]
    pub fn blocked_width(self, start: u32) -> u32 {
        match self {
            Self::G1 => 1,
            Self::G2 => 2,
            // 3g blocks a half-GPU region: 4 slices at start 0, the
            // remaining 3 compute slices at start 4.
            Self::G3 => {
                if start == 0 {
                    4
                } else {
                    3
                }
            }
            Self::G4 => 4,
            Self::G7 => 7,
        }
    }

    /// Valid start slices on an A100-shaped die (7 usable compute slices).
    #[must_use]
    pub fn valid_starts(self) -> &'static [u32] {
        match self {
            Self::G1 => &[0, 1, 2, 3, 4, 5, 6],
            Self::G2 => &[0, 2, 4],
            Self::G3 => &[0, 4],
            Self::G4 => &[0],
            Self::G7 => &[0],
        }
    }

    /// Fraction of total GPU compute (A100: slices / 8).
    #[must_use]
    pub fn compute_fraction(self, arch: &GpuArch) -> f64 {
        f64::from(self.compute_slices()) / f64::from(arch.gpcs)
    }

    /// Fraction of total GPU memory bandwidth.
    #[must_use]
    pub fn mem_fraction(self, arch: &GpuArch) -> f64 {
        f64::from(self.mem_slices()) / f64::from(arch.mem_slices)
    }

    /// Profile whose compute-slice count is `slices`, if any.
    #[must_use]
    pub fn from_slices(slices: u32) -> Option<Self> {
        match slices {
            1 => Some(Self::G1),
            2 => Some(Self::G2),
            3 => Some(Self::G3),
            4 => Some(Self::G4),
            7 => Some(Self::G7),
            _ => None,
        }
    }
}

impl fmt::Display for GiProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::G1 => "1g.5gb",
            Self::G2 => "2g.10gb",
            Self::G3 => "3g.20gb",
            Self::G4 => "4g.20gb",
            Self::G7 => "7g.40gb",
        };
        f.write_str(s)
    }
}

/// A placed GPU instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GiPlacement {
    /// The profile.
    pub profile: GiProfile,
    /// Start slice.
    pub start: u32,
}

/// A concrete MIG configuration: a set of placed, non-overlapping GIs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigConfig {
    /// The placements, sorted by start slice.
    placements: Vec<GiPlacement>,
}

impl MigConfig {
    /// Build and validate a configuration from placements.
    pub fn new(mut placements: Vec<GiPlacement>) -> Result<Self, PartitionError> {
        placements.sort_by_key(|p| p.start);
        let mut occupied = [false; 7];
        for p in &placements {
            if !p.profile.valid_starts().contains(&p.start) {
                return Err(PartitionError::Unplaceable(format!(
                    "{} cannot start at slice {}",
                    p.profile, p.start
                )));
            }
            let w = p.profile.blocked_width(p.start);
            for s in p.start..p.start + w {
                if s >= 7 {
                    return Err(PartitionError::Unplaceable(format!(
                        "{} at {} runs past the die edge",
                        p.profile, p.start
                    )));
                }
                if occupied[s as usize] {
                    return Err(PartitionError::Unplaceable(format!(
                        "slice {s} claimed twice"
                    )));
                }
                occupied[s as usize] = true;
            }
        }
        Ok(Self { placements })
    }

    /// Place a profile multiset, searching placements with backtracking
    /// (first-fit alone misses e.g. `[G3, G1, G1, G1, G1]`, which needs
    /// the 3g at start 4). Returns an error if the multiset cannot be
    /// placed at all — e.g. `[G3, G3, G1]` on an A100.
    pub fn from_profiles(profiles: &[GiProfile]) -> Result<Self, PartitionError> {
        fn place(rest: &[GiProfile], occupied: &mut [bool; 7], acc: &mut Vec<GiPlacement>) -> bool {
            let Some((&prof, rest)) = rest.split_first() else {
                return true;
            };
            for &start in prof.valid_starts() {
                let w = prof.blocked_width(start);
                if start + w <= 7 && (start..start + w).all(|s| !occupied[s as usize]) {
                    for s in start..start + w {
                        occupied[s as usize] = true;
                    }
                    acc.push(GiPlacement {
                        profile: prof,
                        start,
                    });
                    if place(rest, occupied, acc) {
                        return true;
                    }
                    acc.pop();
                    for s in start..start + w {
                        occupied[s as usize] = false;
                    }
                }
            }
            false
        }

        let mut sorted: Vec<GiProfile> = profiles.to_vec();
        sorted.sort_by_key(|p| std::cmp::Reverse(p.compute_slices()));
        let mut occupied = [false; 7];
        let mut placements = Vec::with_capacity(sorted.len());
        if !place(&sorted, &mut occupied, &mut placements) {
            return Err(PartitionError::Unplaceable(format!(
                "profile multiset {sorted:?} does not fit the die"
            )));
        }
        Self::new(placements)
    }

    /// The placements (sorted by start slice).
    #[must_use]
    pub fn placements(&self) -> &[GiPlacement] {
        &self.placements
    }

    /// Profile multiset, sorted descending by size.
    #[must_use]
    pub fn profiles(&self) -> Vec<GiProfile> {
        let mut v: Vec<GiProfile> = self.placements.iter().map(|p| p.profile).collect();
        v.sort_by_key(|p| std::cmp::Reverse(p.compute_slices()));
        v
    }

    /// Total compute slices in use.
    #[must_use]
    pub fn used_compute_slices(&self) -> u32 {
        self.placements
            .iter()
            .map(|p| p.profile.compute_slices())
            .sum()
    }
}

/// Enumerate every valid MIG configuration (as a profile multiset).
///
/// With `maximal_only`, only configurations to which no further instance
/// can be added are returned — this is how NVIDIA's MIG documentation
/// tabulates the A100's supported combinations and is the counting behind
/// the paper's "19 variants" claim (our placement rules yield 14 maximal
/// multisets + 5 distinct *placements* of the same multisets; the tests
/// pin both counts and `repro table7` prints the full list).
#[must_use]
pub fn valid_gi_combinations(maximal_only: bool) -> Vec<Vec<GiProfile>> {
    let mut found: Vec<Vec<GiProfile>> = Vec::new();
    let mut current: Vec<GiPlacement> = Vec::new();
    let mut occupied = [false; 7];

    fn rec(
        slice: u32,
        occupied: &mut [bool; 7],
        current: &mut Vec<GiPlacement>,
        found: &mut Vec<Vec<GiProfile>>,
        maximal_only: bool,
    ) {
        // Record current configuration (if non-empty and, when requested,
        // maximal: no profile fits anywhere).
        if !current.is_empty() {
            let is_maximal = !GiProfile::ALL.iter().any(|p| {
                p.valid_starts().iter().any(|&s| {
                    let w = p.blocked_width(s);
                    s + w <= 7 && (s..s + w).all(|x| !occupied[x as usize])
                })
            });
            if !maximal_only || is_maximal {
                let mut profs: Vec<GiProfile> = current.iter().map(|p| p.profile).collect();
                profs.sort_by_key(|p| std::cmp::Reverse(p.compute_slices()));
                if !found.contains(&profs) {
                    found.push(profs);
                }
            }
        }
        if slice >= 7 {
            return;
        }
        // Option 1: leave `slice` unused.
        rec(slice + 1, occupied, current, found, maximal_only);
        // Option 2: start a profile at `slice`.
        for p in GiProfile::ALL {
            if !p.valid_starts().contains(&slice) {
                continue;
            }
            let w = p.blocked_width(slice);
            if slice + w > 7 || (slice..slice + w).any(|s| occupied[s as usize]) {
                continue;
            }
            for s in slice..slice + w {
                occupied[s as usize] = true;
            }
            current.push(GiPlacement {
                profile: p,
                start: slice,
            });
            rec(slice + w, occupied, current, found, maximal_only);
            current.pop();
            for s in slice..slice + w {
                occupied[s as usize] = false;
            }
        }
    }

    rec(0, &mut occupied, &mut current, &mut found, maximal_only);
    found.sort_by(|a, b| {
        b.iter()
            .map(|p| p.compute_slices())
            .sum::<u32>()
            .cmp(&a.iter().map(|p| p.compute_slices()).sum::<u32>())
            .then_with(|| a.len().cmp(&b.len()))
            .then_with(|| b.cmp(a))
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_sizes_match_a100_table() {
        assert_eq!(GiProfile::G1.compute_slices(), 1);
        assert_eq!(GiProfile::G3.compute_slices(), 3);
        assert_eq!(GiProfile::G3.mem_slices(), 4, "3g owns half the memory");
        assert_eq!(GiProfile::G7.mem_slices(), 8);
    }

    #[test]
    fn fractions_against_a100() {
        let arch = GpuArch::a100();
        assert!((GiProfile::G3.compute_fraction(&arch) - 0.375).abs() < 1e-12);
        assert!((GiProfile::G4.compute_fraction(&arch) - 0.5).abs() < 1e-12);
        assert!((GiProfile::G3.mem_fraction(&arch) - 0.5).abs() < 1e-12);
        assert!((GiProfile::G4.mem_fraction(&arch) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn canonical_3g_plus_4g_places() {
        let cfg = MigConfig::from_profiles(&[GiProfile::G3, GiProfile::G4]).unwrap();
        assert_eq!(cfg.used_compute_slices(), 7);
        assert_eq!(cfg.profiles(), vec![GiProfile::G4, GiProfile::G3]);
    }

    #[test]
    fn unsupported_splits_rejected() {
        // Paper: "dividing 7 GPCs into 2+5 or 1+6 is not supported" — 5g
        // and 6g profiles simply do not exist.
        assert_eq!(GiProfile::from_slices(5), None);
        assert_eq!(GiProfile::from_slices(6), None);
        // Two 3g and a 4g cannot coexist (regions collide).
        assert!(MigConfig::from_profiles(&[GiProfile::G3, GiProfile::G3, GiProfile::G4]).is_err());
        // 3g + 3g + 1g is unplaceable: both 3g regions block all slices.
        assert!(MigConfig::from_profiles(&[GiProfile::G3, GiProfile::G3, GiProfile::G1]).is_err());
    }

    #[test]
    fn backtracking_finds_non_first_fit_placement() {
        // 3g must go at start 4 so the four 1g fit in slices 0-3.
        let cfg = MigConfig::from_profiles(&[
            GiProfile::G3,
            GiProfile::G1,
            GiProfile::G1,
            GiProfile::G1,
            GiProfile::G1,
        ])
        .unwrap();
        assert_eq!(cfg.placements().len(), 5);
        let g3 = cfg
            .placements()
            .iter()
            .find(|p| p.profile == GiProfile::G3)
            .unwrap();
        assert_eq!(g3.start, 4);
    }

    #[test]
    fn three_g_pair_is_placeable() {
        let cfg = MigConfig::from_profiles(&[GiProfile::G3, GiProfile::G3]).unwrap();
        assert_eq!(cfg.placements().len(), 2);
    }

    #[test]
    fn overlapping_placements_rejected() {
        let err = MigConfig::new(vec![
            GiPlacement {
                profile: GiProfile::G4,
                start: 0,
            },
            GiPlacement {
                profile: GiProfile::G3,
                start: 0,
            },
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn invalid_start_rejected() {
        let err = MigConfig::new(vec![GiPlacement {
            profile: GiProfile::G4,
            start: 2,
        }]);
        assert!(err.is_err());
    }

    #[test]
    fn maximal_combination_count_is_stable() {
        let maximal = valid_gi_combinations(true);
        // Placement-rule-derived maximal multisets. NVIDIA's docs (and the
        // paper) count "variants" slightly differently (the paper says 19,
        // counting some distinct placements of the same multiset); the
        // structural facts that matter to the scheduler are asserted below.
        assert_eq!(maximal.len(), 14, "maximal multisets: {maximal:?}");
        assert!(maximal.contains(&vec![GiProfile::G7]));
        assert!(maximal.contains(&vec![GiProfile::G4, GiProfile::G3]));
        assert!(maximal.contains(&vec![GiProfile::G3, GiProfile::G3]));
        assert!(maximal.contains(&vec![GiProfile::G1; 7]));
        assert!(!maximal
            .iter()
            .any(|c| c.iter().map(|p| p.compute_slices()).sum::<u32>() > 7));
    }

    #[test]
    fn all_combination_count_superset_of_maximal() {
        let all = valid_gi_combinations(false);
        let maximal = valid_gi_combinations(true);
        assert!(all.len() > maximal.len());
        for m in &maximal {
            assert!(all.contains(m));
        }
        // Every multiset must actually place.
        for c in &all {
            MigConfig::from_profiles(c).unwrap();
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(GiProfile::G3.to_string(), "3g.20gb");
        assert_eq!(GiProfile::G7.to_string(), "7g.40gb");
    }
}
