//! The DQN agent: ε-greedy behaviour policy, double-DQN targets, Huber
//! loss, and periodic target-network synchronisation — the configuration
//! of the paper's §IV-D / Table VI.
//!
//! A learning step runs the **whole minibatch as batched ops**: one
//! contiguous sample ([`MiniBatch`]), one batched forward over the
//! online and target networks for the double-DQN targets, one batched
//! forward/backward for the TD error, one Adam update. The legacy
//! per-sample path is kept as [`DqnAgent::learn_per_sample`] — it draws
//! the same minibatch for the same RNG state and produces the same
//! weights to within float accumulation error, which the equivalence
//! tests pin down; the benchmarks measure the gap between the two.

use crate::net::{Head, PredictScratch, QNet};
use crate::opt::Adam;
use crate::replay::{MiniBatch, Transition};
use crate::sharded::ShardedReplay;
use crate::tensor::{masked_argmax, masked_argmax_batch, masked_argmax_tiebreak, masked_uniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Agent hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// State vector length.
    pub state_dim: usize,
    /// Number of actions (paper: 29).
    pub n_actions: usize,
    /// Hidden-layer widths (paper: 512/256/128).
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size per learning step.
    pub batch_size: usize,
    /// Sync the target network every this many learning steps.
    pub target_sync_every: u64,
    /// Replay-buffer capacity: total across all shards, rounded up to a
    /// multiple of `shards` (see [`ShardedReplay::new`]).
    pub buffer_capacity: usize,
    /// Replay shards ([`ShardedReplay`]); `1` = the classic single ring
    /// with bit-identical sampling.
    pub shards: usize,
    /// Huber loss transition point.
    pub huber_delta: f32,
    /// Use the double-DQN target (van Hasselt et al.). Off = vanilla DQN.
    pub double: bool,
    /// Head architecture (paper: dueling).
    pub head: Head,
    /// RNG seed (weights, ε-greedy, replay sampling).
    pub seed: u64,
}

impl DqnConfig {
    /// The paper's configuration for a given state/action space.
    #[must_use]
    pub fn paper(state_dim: usize, n_actions: usize) -> Self {
        Self {
            state_dim,
            n_actions,
            hidden: vec![512, 256, 128],
            gamma: 0.95,
            lr: 5e-4,
            batch_size: 32,
            target_sync_every: 200,
            buffer_capacity: 20_000,
            shards: 1,
            huber_delta: 1.0,
            double: true,
            head: Head::Dueling,
            seed: 42,
        }
    }
}

/// Huber loss and its derivative at error `err`.
#[inline]
fn huber(err: f32, delta: f32) -> (f32, f32) {
    if err.abs() <= delta {
        (0.5 * err * err, err)
    } else {
        (delta * (err.abs() - 0.5 * delta), delta * err.signum())
    }
}

/// ε-greedy action from a Q-network: explore uniformly over the
/// `mask`'s valid bits with probability `epsilon`, otherwise exploit
/// with exact-tie breaking drawn from `rng` (not iteration order, which
/// would bias exploration toward low-numbered actions).
///
/// This is the single source of behaviour-policy truth: the agent's own
/// [`DqnAgent::select_action`] and the rollout workers acting against a
/// frozen snapshot both call it, so training rollouts and the deployed
/// agent can never silently diverge.
///
/// # Panics
/// Panics if the mask has no valid action.
pub fn epsilon_greedy_action(
    net: &QNet,
    state: &[f32],
    mask: u64,
    n_actions: usize,
    epsilon: f64,
    rng: &mut SmallRng,
) -> usize {
    let mut scratch = ActionScratch::default();
    epsilon_greedy_action_with(net, state, mask, n_actions, epsilon, rng, &mut scratch)
}

/// Reusable buffers for [`epsilon_greedy_action_with`]: the Q-value
/// vector plus the network's inference scratch. After warm-up, action
/// selection performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct ActionScratch {
    predict: PredictScratch,
    q: Vec<f32>,
}

/// [`epsilon_greedy_action`] with caller-owned scratch — identical RNG
/// draws and bit-identical Q-values (it runs the same kernels through
/// [`QNet::predict_into`]), so the two forms can never diverge; this
/// one just keeps the hot loop off the allocator.
///
/// # Panics
/// Panics if the mask has no valid action.
pub fn epsilon_greedy_action_with(
    net: &QNet,
    state: &[f32],
    mask: u64,
    n_actions: usize,
    epsilon: f64,
    rng: &mut SmallRng,
    scratch: &mut ActionScratch,
) -> usize {
    assert!(mask != 0, "no valid action");
    if rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
        masked_uniform(mask, n_actions, rng).expect("mask checked non-empty")
    } else {
        net.predict_into(state, &mut scratch.predict, &mut scratch.q);
        masked_argmax_tiebreak(&scratch.q, |a| mask & (1 << a) != 0, rng)
            .expect("mask checked non-empty")
    }
}

/// A dueling double-DQN agent.
pub struct DqnAgent {
    cfg: DqnConfig,
    online: QNet,
    target: QNet,
    adam: Adam,
    buffer: ShardedReplay,
    rng: SmallRng,
    learn_steps: u64,
    /// Reusable action-selection scratch (allocation-free hot loop).
    act_scratch: ActionScratch,
    grad_buf: Vec<f32>,
    delta_buf: Vec<f32>,
    /// Reusable batched-learning scratch.
    minibatch: MiniBatch,
    q_next_online: Vec<f32>,
    q_next_target: Vec<f32>,
    q_pred: Vec<f32>,
    targets: Vec<f32>,
    dq: Vec<f32>,
    a_star: Vec<Option<usize>>,
}

impl DqnAgent {
    /// Build an agent (target starts as a copy of the online network).
    #[must_use]
    pub fn new(cfg: DqnConfig) -> Self {
        let online = QNet::new(
            cfg.state_dim,
            &cfg.hidden,
            cfg.n_actions,
            cfg.head,
            cfg.seed,
        );
        let mut target = QNet::new(
            cfg.state_dim,
            &cfg.hidden,
            cfg.n_actions,
            cfg.head,
            cfg.seed.wrapping_add(1),
        );
        target.copy_weights_from(&online);
        let adam = Adam::new(online.num_params(), cfg.lr);
        let buffer = ShardedReplay::new(cfg.buffer_capacity, cfg.shards.max(1));
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5eed);
        Self {
            cfg,
            online,
            target,
            adam,
            buffer,
            rng,
            learn_steps: 0,
            act_scratch: ActionScratch::default(),
            grad_buf: Vec::new(),
            delta_buf: Vec::new(),
            minibatch: MiniBatch::new(),
            q_next_online: Vec::new(),
            q_next_target: Vec::new(),
            q_pred: Vec::new(),
            targets: Vec::new(),
            dq: Vec::new(),
            a_star: Vec::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// Q-values of the online network for a state (inference).
    #[must_use]
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        self.online.predict(state)
    }

    /// ε-greedy action among the `mask`'s valid bits (see
    /// [`epsilon_greedy_action`]), drawing from the agent RNG stream.
    ///
    /// # Panics
    /// Panics if the mask has no valid action.
    pub fn select_action(&mut self, state: &[f32], mask: u64, epsilon: f64) -> usize {
        epsilon_greedy_action_with(
            &self.online,
            state,
            mask,
            self.cfg.n_actions,
            epsilon,
            &mut self.rng,
            &mut self.act_scratch,
        )
    }

    /// Greedy (ε = 0) action — the online-phase policy. Deterministic:
    /// ties break to the lowest index.
    #[must_use]
    pub fn greedy_action(&self, state: &[f32], mask: u64) -> usize {
        let q = self.online.predict(state);
        masked_argmax(&q, |a| mask & (1 << a) != 0).expect("no valid action")
    }

    /// Store a transition, routing replay shards round-robin.
    pub fn remember(&mut self, t: Transition) {
        debug_assert_eq!(t.state.len(), self.cfg.state_dim);
        self.buffer.push(t);
    }

    /// Store a transition in an explicit replay shard. The training
    /// pipeline routes by **episode index** (`episode % shards`), so
    /// shard contents are invariant to the rollout worker count.
    ///
    /// # Panics
    /// Panics if `shard >= config().shards`.
    pub fn remember_to(&mut self, shard: usize, t: Transition) {
        debug_assert_eq!(t.state.len(), self.cfg.state_dim);
        self.buffer.push_to(shard, t);
    }

    /// Transitions currently stored.
    #[must_use]
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// One batched learning step (a mini-batch of SGD on the TD error).
    /// Returns the mean Huber loss, or `None` when the buffer is still
    /// smaller than the batch size.
    pub fn learn(&mut self) -> Option<f32> {
        if self.buffer.len() < self.cfg.batch_size {
            return None;
        }
        let b = self.cfg.batch_size;
        let n = self.cfg.n_actions;
        self.buffer
            .sample_into(b, &mut self.rng, &mut self.minibatch);

        // Bootstrap Q-values for the successor states, one batched pass
        // per network. `forward_batch` (not `predict_batch`) reuses each
        // layer's scratch; the online net's caches are re-established by
        // the state forward below, before the backward needs them.
        if self.cfg.double {
            // Double DQN: the online net picks a* for every row at once,
            // the target net evaluates it.
            self.online
                .forward_batch(&self.minibatch.next_states, b, &mut self.q_next_online);
            masked_argmax_batch(
                &self.q_next_online,
                b,
                n,
                &self.minibatch.next_masks,
                &mut self.a_star,
            );
        }
        self.target
            .forward_batch(&self.minibatch.next_states, b, &mut self.q_next_target);

        self.targets.resize(b, 0.0);
        for i in 0..b {
            let y = if self.minibatch.dones[i] {
                self.minibatch.rewards[i]
            } else {
                let mask = self.minibatch.next_masks[i];
                let bootstrap = if self.cfg.double {
                    let a_star = self.a_star[i].unwrap_or(0);
                    self.q_next_target[i * n + a_star]
                } else {
                    let q_t = &self.q_next_target[i * n..(i + 1) * n];
                    masked_argmax(q_t, |a| mask & (1 << a) != 0).map_or(0.0, |a| q_t[a])
                };
                self.minibatch.rewards[i] + self.cfg.gamma * bootstrap
            };
            self.targets[i] = y;
        }

        // One batched forward/backward over the whole minibatch.
        self.online.zero_grad();
        self.online
            .forward_batch(&self.minibatch.states, b, &mut self.q_pred);
        self.dq.clear();
        self.dq.resize(b * n, 0.0);
        let inv_n = 1.0 / b as f32;
        let mut total_loss = 0.0f32;
        for i in 0..b {
            let a = self.minibatch.actions[i];
            let err = self.q_pred[i * n + a] - self.targets[i];
            let (loss, dloss) = huber(err, self.cfg.huber_delta);
            total_loss += loss;
            self.dq[i * n + a] = dloss * inv_n;
        }
        self.online.backward_batch(&self.dq, b);

        self.finish_step();
        Some(total_loss * inv_n)
    }

    /// The legacy per-sample learning step: the same minibatch (for the
    /// same RNG state), targets, loss, and update as [`DqnAgent::learn`],
    /// computed one sample at a time. Kept as the reference for the
    /// batch/serial equivalence tests and the `nn_perf` benchmark
    /// baseline.
    pub fn learn_per_sample(&mut self) -> Option<f32> {
        if self.buffer.len() < self.cfg.batch_size {
            return None;
        }
        // Compute targets first (immutable borrows), then backprop.
        let batch: Vec<Transition> = self
            .buffer
            .sample(self.cfg.batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();
        let mut targets = Vec::with_capacity(batch.len());
        for t in &batch {
            let y = if t.done {
                t.reward
            } else {
                let bootstrap = if self.cfg.double {
                    let q_online = self.online.predict(&t.next_state);
                    let a_star =
                        masked_argmax(&q_online, |a| t.next_mask & (1 << a) != 0).unwrap_or(0);
                    self.target.predict(&t.next_state)[a_star]
                } else {
                    let q_t = self.target.predict(&t.next_state);
                    masked_argmax(&q_t, |a| t.next_mask & (1 << a) != 0).map_or(0.0, |a| q_t[a])
                };
                t.reward + self.cfg.gamma * bootstrap
            };
            targets.push(y);
        }

        self.online.zero_grad();
        let mut total_loss = 0.0f32;
        let inv_n = 1.0 / batch.len() as f32;
        for (t, &y) in batch.iter().zip(targets.iter()) {
            let q = self.online.forward(&t.state);
            let err = q[t.action] - y;
            let (loss, dloss) = huber(err, self.cfg.huber_delta);
            total_loss += loss;
            let mut dq = vec![0.0f32; self.cfg.n_actions];
            dq[t.action] = dloss * inv_n;
            self.online.backward(&dq);
        }

        self.finish_step();
        Some(total_loss * inv_n)
    }

    /// Shared tail of a learning step: Adam update, step counter, and
    /// periodic target sync.
    fn finish_step(&mut self) {
        self.online.write_grads(&mut self.grad_buf);
        self.adam.step(&self.grad_buf, &mut self.delta_buf);
        self.online.apply_delta(&self.delta_buf);

        self.learn_steps += 1;
        if self.learn_steps.is_multiple_of(self.cfg.target_sync_every) {
            self.target.copy_weights_from(&self.online);
        }
    }

    /// Learning steps taken.
    #[must_use]
    pub fn learn_steps(&self) -> u64 {
        self.learn_steps
    }

    /// Direct access to the online network (serialization, inspection).
    #[must_use]
    pub fn online_net(&self) -> &QNet {
        &self.online
    }

    /// Replace the online and target weights (e.g. from a snapshot).
    pub fn load_weights(&mut self, params: &[f32]) {
        self.online.read_params(params);
        self.target.read_params(params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-step deterministic MDP:
    /// state [1,0]: action 1 pays 1.0 and moves to state [0,1];
    /// state [0,1]: action 0 pays 2.0 and ends. All other actions pay 0
    /// (and end). The optimal Q([1,0], 1) = 1 + γ·2.
    fn chain_cfg() -> DqnConfig {
        DqnConfig {
            state_dim: 2,
            n_actions: 2,
            hidden: vec![16, 16],
            gamma: 0.9,
            lr: 5e-3,
            batch_size: 16,
            target_sync_every: 25,
            buffer_capacity: 2000,
            shards: 1,
            huber_delta: 1.0,
            double: true,
            head: Head::Dueling,
            seed: 3,
        }
    }

    fn run_chain(mut agent: DqnAgent, episodes: usize) -> DqnAgent {
        let s0 = vec![1.0f32, 0.0];
        let s1 = vec![0.0f32, 1.0];
        for ep in 0..episodes {
            let eps = (1.0 - ep as f64 / 150.0).max(0.05);
            let a0 = agent.select_action(&s0, 0b11, eps);
            if a0 == 1 {
                agent.remember(Transition {
                    state: s0.clone(),
                    action: 1,
                    reward: 1.0,
                    next_state: s1.clone(),
                    done: false,
                    next_mask: 0b11,
                });
                let a1 = agent.select_action(&s1, 0b11, eps);
                agent.remember(Transition {
                    state: s1.clone(),
                    action: a1,
                    reward: if a1 == 0 { 2.0 } else { 0.0 },
                    next_state: vec![0.0, 0.0],
                    done: true,
                    next_mask: 0,
                });
            } else {
                agent.remember(Transition {
                    state: s0.clone(),
                    action: 0,
                    reward: 0.0,
                    next_state: vec![0.0, 0.0],
                    done: true,
                    next_mask: 0,
                });
            }
            for _ in 0..4 {
                agent.learn();
            }
        }
        agent
    }

    #[test]
    fn learns_two_step_chain() {
        let agent = run_chain(DqnAgent::new(chain_cfg()), 300);
        let s0 = [1.0f32, 0.0];
        let s1 = [0.0f32, 1.0];
        assert_eq!(
            agent.greedy_action(&s0, 0b11),
            1,
            "q={:?}",
            agent.q_values(&s0)
        );
        assert_eq!(
            agent.greedy_action(&s1, 0b11),
            0,
            "q={:?}",
            agent.q_values(&s1)
        );
        // Q(s0, right) ≈ 1 + 0.9·2 = 2.8.
        let q = agent.q_values(&s0);
        assert!((q[1] - 2.8).abs() < 0.6, "Q(s0,1) = {}", q[1]);
    }

    #[test]
    fn plain_head_also_learns() {
        let mut cfg = chain_cfg();
        cfg.head = Head::Plain;
        cfg.double = false;
        let agent = run_chain(DqnAgent::new(cfg), 300);
        assert_eq!(agent.greedy_action(&[1.0, 0.0], 0b11), 1);
    }

    #[test]
    fn action_masking_is_respected() {
        let mut agent = DqnAgent::new(chain_cfg());
        // Only action 0 allowed — even with ε = 1 (pure random).
        for _ in 0..50 {
            assert_eq!(agent.select_action(&[1.0, 0.0], 0b01, 1.0), 0);
        }
        assert_eq!(agent.greedy_action(&[1.0, 0.0], 0b01), 0);
    }

    #[test]
    fn learn_requires_full_batch() {
        let mut agent = DqnAgent::new(chain_cfg());
        assert_eq!(agent.learn(), None);
        for _ in 0..16 {
            agent.remember(Transition {
                state: vec![1.0, 0.0],
                action: 0,
                reward: 1.0,
                next_state: vec![0.0, 0.0],
                done: true,
                next_mask: 0,
            });
        }
        assert!(agent.learn().is_some());
        assert_eq!(agent.learn_steps(), 1);
    }

    #[test]
    fn loss_decreases_on_stationary_target() {
        let mut agent = DqnAgent::new(chain_cfg());
        for _ in 0..64 {
            agent.remember(Transition {
                state: vec![1.0, 0.0],
                action: 0,
                reward: 5.0,
                next_state: vec![0.0, 0.0],
                done: true,
                next_mask: 0,
            });
        }
        let first = agent.learn().unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = agent.learn().unwrap();
        }
        assert!(
            last < first * 0.5,
            "loss should drop: first {first}, last {last}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run_chain(DqnAgent::new(chain_cfg()), 50);
        let b = run_chain(DqnAgent::new(chain_cfg()), 50);
        assert_eq!(a.q_values(&[1.0, 0.0]), b.q_values(&[1.0, 0.0]));
    }

    fn filled_agents() -> (DqnAgent, DqnAgent) {
        // Two identical agents with identical buffers and RNG states.
        let mk = || {
            let mut agent = DqnAgent::new(chain_cfg());
            for i in 0..48 {
                agent.remember(Transition {
                    state: vec![(i % 5) as f32 * 0.2, 1.0 - (i % 3) as f32 * 0.3],
                    action: i % 2,
                    reward: (i % 7) as f32 * 0.5 - 1.0,
                    next_state: vec![(i % 4) as f32 * 0.25, 0.1],
                    done: i % 5 == 0,
                    next_mask: 0b11,
                });
            }
            agent
        };
        (mk(), mk())
    }

    #[test]
    fn batched_learn_equals_per_sample_learn() {
        let (mut batched, mut serial) = filled_agents();
        for step in 0..10 {
            let lb = batched.learn().unwrap();
            let ls = serial.learn_per_sample().unwrap();
            assert!(
                (lb - ls).abs() < 1e-5,
                "step {step}: loss batched {lb} vs per-sample {ls}"
            );
        }
        let mut pb = Vec::new();
        batched.online_net().write_params(&mut pb);
        let mut ps = Vec::new();
        serial.online_net().write_params(&mut ps);
        for (i, (a, e)) in pb.iter().zip(ps.iter()).enumerate() {
            assert!(
                (a - e).abs() < 1e-5,
                "param {i}: batched {a} vs per-sample {e}"
            );
        }
    }

    #[test]
    fn sharded_agent_also_learns_the_chain() {
        let mut cfg = chain_cfg();
        cfg.shards = 4;
        let agent = run_chain(DqnAgent::new(cfg), 300);
        assert_eq!(agent.greedy_action(&[1.0, 0.0], 0b11), 1);
        assert_eq!(agent.greedy_action(&[0.0, 1.0], 0b11), 0);
    }

    #[test]
    fn sharded_batched_learn_equals_sharded_per_sample_learn() {
        // The stratified sampling schedule feeds the batched and the
        // per-sample learning paths identically for shards > 1 too.
        let mk = || {
            let mut cfg = chain_cfg();
            cfg.shards = 4;
            let mut agent = DqnAgent::new(cfg);
            for i in 0..48 {
                agent.remember_to(
                    i % 4,
                    Transition {
                        state: vec![(i % 5) as f32 * 0.2, 1.0 - (i % 3) as f32 * 0.3],
                        action: i % 2,
                        reward: (i % 7) as f32 * 0.5 - 1.0,
                        next_state: vec![(i % 4) as f32 * 0.25, 0.1],
                        done: i % 5 == 0,
                        next_mask: 0b11,
                    },
                );
            }
            agent
        };
        let (mut batched, mut serial) = (mk(), mk());
        for _ in 0..8 {
            batched.learn().unwrap();
            serial.learn_per_sample().unwrap();
        }
        let mut pb = Vec::new();
        batched.online_net().write_params(&mut pb);
        let mut ps = Vec::new();
        serial.online_net().write_params(&mut ps);
        for (i, (a, e)) in pb.iter().zip(ps.iter()).enumerate() {
            assert!(
                (a - e).abs() < 1e-5,
                "param {i}: batched {a} vs per-sample {e}"
            );
        }
    }

    #[test]
    fn tie_breaking_uses_agent_rng_stream() {
        // A fresh dueling network with an all-zero state scores every
        // action identically through the value head only when weights
        // make them tie; instead force ties by zeroing the weights.
        let mut agent = DqnAgent::new(chain_cfg());
        let zeros = vec![0.0f32; agent.online_net().num_params()];
        agent.load_weights(&zeros);
        // With all-zero weights every Q-value is exactly 0 → a full tie.
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            counts[agent.select_action(&[0.3, 0.7], 0b11, 0.0)] += 1;
        }
        assert!(
            counts[0] > 100 && counts[1] > 100,
            "ties should split across actions, got {counts:?}"
        );
    }
}
