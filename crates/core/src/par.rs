//! Bounded parallelism over indexed work items: one-shot scoped
//! fan-out ([`parallel_map`]) and a persistent [`WorkerPool`].
//!
//! The workspace's parallel sections (rollout workers, evaluation
//! queues, the multi-node epoch fan-out) all share the same shape: a
//! fixed list of independent items, a worker function producing one
//! output per item, and a cap on simultaneous threads. [`parallel_map`]
//! implements that shape with `std::thread::scope` and an atomic work
//! queue — no thread pool, no external dependency, and a serial fast
//! path when one thread (or one item) makes spawning pointless.
//!
//! [`WorkerPool`] keeps the exact same contract but amortises thread
//! creation: callers that fan out *repeatedly* over small item counts
//! (the multi-node simulator runs one fan-out per arrival instant) pay
//! spawn/join once per pool instead of once per call. `pool.map(n, f)`
//! and `parallel_map(n, threads, f)` return identical results for the
//! same `f` — scheduling is an execution detail in both.
//!
//! Results are returned **in item order** regardless of which worker
//! claimed which item, so callers stay deterministic for a fixed input
//! regardless of the thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of worker threads to use when the caller passes `0`
/// ("auto"): the machine's available parallelism.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Apply `f` to every index in `0..n`, using at most `threads` worker
/// threads (`0` = available parallelism), and collect the outputs in
/// index order.
///
/// `f` runs concurrently on distinct indices; each output lands in its
/// index's slot, so the result is independent of scheduling order:
///
/// ```
/// use hrp_core::par::parallel_map;
///
/// let serial = parallel_map(8, 1, |i| i * i);
/// let fanned = parallel_map(8, 4, |i| i * i);
/// assert_eq!(serial, fanned);
/// assert_eq!(fanned, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("worker panicked"));
        }
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in per_worker.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} claimed twice");
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

/// A lifetime-erased pointer to the current epoch's work closure.
///
/// Soundness: [`WorkerPool::map`] publishes the pointer under the pool
/// mutex and blocks on the same mutex until every worker has finished
/// the epoch, so the closure (and everything it borrows) strictly
/// outlives every dereference.
#[derive(Clone, Copy)]
struct ErasedFn(*const (dyn Fn(usize) + Sync));

// The pointee is `Sync` and the pointer only crosses threads while the
// publisher keeps the closure alive (see above).
unsafe impl Send for ErasedFn {}
unsafe impl Sync for ErasedFn {}

/// One epoch of pool work: the erased closure plus the item count.
#[derive(Clone, Copy)]
struct Task {
    call: ErasedFn,
    n: usize,
}

/// Pool coordination state, guarded by [`Shared::ctrl`].
struct Ctrl {
    /// Bumped once per published epoch; workers use it to tell a new
    /// epoch from a spurious wakeup.
    epoch: u64,
    /// Highest epoch whose workers have all finished. Publishers wait
    /// on *their* epoch number, so a concurrent publisher slipping a
    /// new epoch in cannot be mistaken for one's own completion.
    completed: u64,
    /// The in-flight epoch (`None` between maps).
    task: Option<Task>,
    /// Workers that have not yet finished the in-flight epoch. Every
    /// worker participates in every epoch (possibly claiming zero
    /// items), so the epoch is over exactly when this reaches zero.
    active: usize,
    /// First caught panic payload per epoch, drained by that epoch's
    /// publisher (keyed so a later epoch cannot clobber an unobserved
    /// failure).
    panics: Vec<(u64, Box<dyn std::any::Any + Send>)>,
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Workers wait here for the next epoch.
    work: Condvar,
    /// The publisher waits here for epoch completion.
    done: Condvar,
    /// The epoch's atomic item cursor (reset under the lock before each
    /// publish).
    cursor: AtomicUsize,
}

/// Raw results pointer smuggled into the erased closure; distinct
/// indices write distinct slots, so concurrent writes never alias.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Write `v` to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and no other thread may target the same
    /// slot (the epoch cursor hands out distinct indices).
    unsafe fn write(&self, i: usize, v: T) {
        unsafe { self.0.add(i).write(v) };
    }
}

/// A persistent worker pool with [`parallel_map`] semantics.
///
/// Threads are spawned once at construction and parked between calls;
/// [`WorkerPool::map`] wakes them for one epoch of index-claiming work
/// and returns the outputs in item order. Repeated small fan-outs (the
/// multi-node simulator's per-arrival-instant epochs, benchmark loops)
/// skip the per-call spawn/join cost of [`parallel_map`]:
///
/// ```
/// use hrp_core::par::{parallel_map, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// for _ in 0..3 {
///     let pooled = pool.map(8, |i| i * i);
///     assert_eq!(pooled, parallel_map(8, 4, |i| i * i));
/// }
/// ```
///
/// Calls are serialised: a `map` that arrives while another is in
/// flight waits for it. Dropping the pool joins every worker.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (`0` = available parallelism).
    /// A resolved count of 1 spawns no threads at all: `map` then runs
    /// serially on the caller, exactly like `parallel_map(n, 1, f)`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = resolve_threads(threads);
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                completed: 0,
                task: None,
                active: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let handles = if threads <= 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&shared))
                })
                .collect()
        };
        Self { shared, handles }
    }

    /// Number of worker threads backing the pool (1 means "serial on
    /// the caller").
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len().max(1)
    }

    /// Apply `f` to every index in `0..n` on the pool's workers and
    /// collect the outputs in index order — the persistent-pool
    /// equivalent of [`parallel_map`], with the identical determinism
    /// contract.
    ///
    /// # Panics
    /// Propagates a panic from `f`.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.handles.is_empty() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let slots = SendPtr(out.as_mut_ptr());
        let call = |i: usize| {
            let v = f(i);
            // Distinct indices target distinct slots; `None` needs no
            // drop, so an overwrite-free `write` is enough.
            unsafe { slots.write(i, Some(v)) };
        };
        self.run_epoch(&call, n);
        out.into_iter()
            .map(|v| v.expect("every index claimed exactly once"))
            .collect()
    }

    /// Run `f` over every index in `0..n` on the pool's workers without
    /// collecting outputs — one synchronized fan-out round with no
    /// per-call result buffer. The workhorse behind effect-only epochs
    /// (the multi-node drivers advance nodes behind mutexes and keep
    /// nothing per index).
    ///
    /// # Panics
    /// Propagates a panic from `f`.
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.handles.is_empty() || n <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        self.run_epoch(&f, n);
    }

    /// Publish one epoch of work and block until every worker finished
    /// it (the shared core of [`WorkerPool::map`] and
    /// [`WorkerPool::for_each`]).
    fn run_epoch(&self, f: &(dyn Fn(usize) + Sync), n: usize) {
        #[allow(clippy::missing_transmute_annotations)]
        let call = ErasedFn(unsafe {
            // Erase the borrow's lifetime; the publisher blocks until
            // every worker finished the epoch (see `ErasedFn`).
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), _>(f)
        });

        let mut ctrl = self.shared.ctrl.lock().expect("pool lock");
        while ctrl.task.is_some() || ctrl.active > 0 {
            ctrl = self.shared.done.wait(ctrl).expect("pool lock");
        }
        self.shared.cursor.store(0, Ordering::Relaxed);
        ctrl.task = Some(Task { call, n });
        ctrl.active = self.handles.len();
        ctrl.epoch += 1;
        let my_epoch = ctrl.epoch;
        self.shared.work.notify_all();
        // Wait for *this* epoch specifically: a concurrent publisher
        // may slip its own epoch in between our completion and our
        // wakeup, and that must not be mistaken for ours.
        while ctrl.completed < my_epoch {
            ctrl = self.shared.done.wait(ctrl).expect("pool lock");
        }
        let payload = ctrl
            .panics
            .iter()
            .position(|(e, _)| *e == my_epoch)
            .map(|i| ctrl.panics.swap_remove(i).1);
        drop(ctrl);
        if let Some(payload) = payload {
            // Re-raise the worker's original panic (e.g. the node
            // simulator's deadlock diagnostic), as a scoped spawn
            // would.
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.ctrl.lock().expect("pool lock");
            ctrl.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut ctrl = shared.ctrl.lock().expect("pool lock");
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.epoch != seen {
                    if let Some(task) = ctrl.task {
                        seen = ctrl.epoch;
                        break task;
                    }
                }
                ctrl = shared.work.wait(ctrl).expect("pool lock");
            }
        };
        // Claim items until the cursor runs out. Panics in `f` are
        // contained so the epoch still completes and the publisher can
        // re-raise instead of deadlocking.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let f = unsafe { &*task.call.0 };
            loop {
                let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= task.n {
                    break;
                }
                f(i);
            }
        }));
        let mut ctrl = shared.ctrl.lock().expect("pool lock");
        if let Err(payload) = outcome {
            // Keep the first payload per epoch for its publisher.
            if !ctrl.panics.iter().any(|(e, _)| *e == seen) {
                ctrl.panics.push((seen, payload));
            }
        }
        ctrl.active -= 1;
        if ctrl.active == 0 {
            ctrl.task = None;
            ctrl.completed = seen;
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        for threads in [1, 2, 4, 0] {
            let got = parallel_map(17, threads, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn resolve_threads_auto_is_positive() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let expensive = |i: usize| -> u64 {
            let mut acc = i as u64;
            for k in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let serial = parallel_map(32, 1, expensive);
        let parallel = parallel_map(32, 4, expensive);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_map_is_equivalent_to_scoped_parallel_map() {
        // The persistent pool and the scoped one-shot fan-out share one
        // contract: same `f`, same outputs, in item order.
        let f = |i: usize| -> u64 {
            let mut acc = i as u64 ^ 0xdead_beef;
            for k in 0..500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        for threads in [1usize, 2, 4, 0] {
            let pool = WorkerPool::new(threads);
            for n in [0usize, 1, 3, 17, 64] {
                assert_eq!(
                    pool.map(n, f),
                    parallel_map(n, threads, f),
                    "threads = {threads}, n = {n}"
                );
            }
        }
    }

    #[test]
    fn pool_survives_repeated_epochs() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let got = pool.map(9, |i| i + round);
            let want: Vec<usize> = (0..9).map(|i| i + round).collect();
            assert_eq!(got, want, "round {round}");
        }
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn pool_for_each_visits_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        for threads in [1usize, 2, 4, 0] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicU32> = (0..33).map(|_| AtomicU32::new(0)).collect();
            pool.for_each(33, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads = {threads}"
            );
            // And the pool stays usable for collecting calls after.
            assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
        }
    }

    #[test]
    fn pool_with_one_thread_runs_on_the_caller() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.map(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn pool_propagates_the_original_panic_payload() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(8, |i| {
                assert!(i != 5, "boom at item 5");
                i
            })
        }));
        // The worker's own message reaches the caller (a scoped spawn
        // would re-raise it too; diagnostics like the node simulator's
        // deadlock panic must not be replaced by a generic one).
        let payload = result.expect_err("the panic must surface to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(msg.contains("boom at item 5"), "payload lost: {msg:?}");
        // The pool stays usable after a panicked epoch.
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }
}
