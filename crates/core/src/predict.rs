//! Profile-driven co-run prediction.
//!
//! The whole point of collecting job profiles (paper Fig. 7) is being
//! able to reason about a co-run *before launching it*. This module
//! reconstructs an approximate application model from nothing but the
//! measured profile — the Table III counters, the solo run, and the
//! 1-GPC private run the classification procedure performs anyway — and
//! predicts co-run times by running the same analytic engine on the
//! reconstruction:
//!
//! * compute requirement `û` ← `Compute (SM) [%] / 100`;
//! * bandwidth demand `b̂` ← `DRAM Throughput / peak`;
//! * Amdahl fraction `f̂` ← inverted numerically from the measured
//!   1-GPC rate (given `û`, `b̂`);
//! * interference/crowding sensitivities ← per-class calibration
//!   constants (the class itself comes from the measured procedure).
//!
//! Because the inputs are noisy measurements and the sensitivities are
//! class-level constants, predictions deviate from the "hardware"
//! (ground-truth models) — the gap the RL agent learns to absorb.

use hrp_gpusim::arch::GpuArch;
use hrp_gpusim::engine::{simulate_corun, EngineConfig};
use hrp_gpusim::perf::solo_rate;
use hrp_gpusim::{AppModel, CompiledPartition};
use hrp_profile::JobProfile;
use hrp_workloads::{Class, CI_RATIO_THRESHOLD, US_DEGRADATION_THRESHOLD};

/// Per-class sensitivity constants used in reconstructions (system-level
/// calibration values, fitted once per installation).
#[must_use]
pub fn class_sensitivities(class: Class) -> (f64, f64) {
    // (interference σ, crowding κ)
    match class {
        Class::Ci => (0.11, 0.15),
        Class::Mi => (0.40, 0.25),
        Class::Us => (0.08, 0.30),
    }
}

/// Classify from *measured* quantities (the paper's procedure applied to
/// the profile instead of ground truth).
#[must_use]
pub fn classify_profile(profile: &JobProfile) -> Class {
    if profile.one_gpc_degradation() < US_DEGRADATION_THRESHOLD {
        Class::Us
    } else if profile.counters.compute_memory_ratio() > CI_RATIO_THRESHOLD {
        Class::Ci
    } else {
        Class::Mi
    }
}

/// Reconstruct an approximate [`AppModel`] from a profile.
#[must_use]
pub fn reconstruct_app(name: &str, profile: &JobProfile, arch: &GpuArch) -> AppModel {
    let u_hat = (profile.counters.compute_sm_pct / 100.0).clamp(0.05, 1.0);
    let b_hat = (profile.counters.dram_throughput_gbs / arch.peak_bw_gbs).clamp(1e-3, 1.0);
    let class = classify_profile(profile);
    let (sigma, kappa) = class_sensitivities(class);

    // Invert the Amdahl fraction from the measured 1-GPC rate: the
    // predicted 1-GPC rate is monotonically decreasing in f, so bisect.
    let measured_rate = (profile.solo_time / profile.one_gpc_time.max(1e-9)).clamp(1e-3, 1.0);
    let rate_for = |f: f64| {
        let probe = AppModel::builder(name)
            .parallel_fraction(f)
            .compute_demand(u_hat)
            .mem_demand(b_hat)
            .build();
        solo_rate(&probe, arch.gpc_fraction(), arch.mem_slice_fraction())
    };
    let mut lo = 0.0f64;
    let mut hi = 0.9999f64;
    if rate_for(lo) <= measured_rate {
        hi = lo;
    } else if rate_for(hi) >= measured_rate {
        lo = hi;
    } else {
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if rate_for(mid) > measured_rate {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let f_hat = 0.5 * (lo + hi);

    AppModel::builder(name)
        .parallel_fraction(f_hat)
        .compute_demand(u_hat)
        .mem_demand(b_hat)
        .interference_sensitivity(sigma)
        .crowd_sensitivity(kappa)
        .solo_time(profile.solo_time)
        .utilisation(profile.counters.compute_sm_pct, profile.counters.memory_pct)
        .build()
}

/// A co-run predictor over a fixed set of jobs (one window).
#[derive(Debug, Clone)]
pub struct CoRunPredictor {
    apps: Vec<AppModel>,
    engine: EngineConfig,
}

impl CoRunPredictor {
    /// Build from per-job profiles (`names[i]` labels `profiles[i]`).
    #[must_use]
    pub fn new(
        names: &[&str],
        profiles: &[JobProfile],
        arch: &GpuArch,
        engine: EngineConfig,
    ) -> Self {
        assert_eq!(names.len(), profiles.len());
        let apps = names
            .iter()
            .zip(profiles.iter())
            .map(|(n, p)| reconstruct_app(n, p, arch))
            .collect();
        Self { apps, engine }
    }

    /// The reconstructed model of job `i`.
    #[must_use]
    pub fn app(&self, i: usize) -> &AppModel {
        &self.apps[i]
    }

    /// Predicted makespan of co-running `job_ids` on `part`
    /// (`assignment[k]` = slot of `job_ids[k]`).
    #[must_use]
    pub fn predict_makespan(
        &self,
        job_ids: &[usize],
        part: &CompiledPartition,
        assignment: &[usize],
    ) -> f64 {
        let apps: Vec<&AppModel> = job_ids.iter().map(|&j| &self.apps[j]).collect();
        simulate_corun(&apps, assignment, part, &self.engine).makespan
    }

    /// Predicted makespan under the best slot assignment; returns
    /// `(makespan, assignment)`.
    #[must_use]
    pub fn predict_best_assignment(
        &self,
        job_ids: &[usize],
        part: &CompiledPartition,
    ) -> (f64, Vec<usize>) {
        let c = job_ids.len();
        let mut best = (f64::INFINITY, (0..c).collect::<Vec<_>>());
        let mut perm: Vec<usize> = (0..c).collect();
        permute(&mut perm, 0, &mut |assignment: &[usize]| {
            let m = self.predict_makespan(job_ids, part, assignment);
            if m < best.0 {
                best = (m, assignment.to_vec());
            }
        });
        best
    }

    /// Predicted solo (time-sharing) time of a job set.
    #[must_use]
    pub fn predicted_solo_sum(&self, job_ids: &[usize]) -> f64 {
        job_ids.iter().map(|&j| self.apps[j].solo_time).sum()
    }
}

/// Heap's-algorithm permutation visitor (small `n`).
fn permute(xs: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        visit(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, visit);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrp_gpusim::PartitionScheme;
    use hrp_profile::Profiler;
    use hrp_workloads::Suite;

    fn setup() -> (Suite, Vec<JobProfile>, Vec<String>) {
        let arch = GpuArch::a100();
        let suite = Suite::paper_suite(&arch);
        let profiler = Profiler::new(arch, 0.02, 5);
        let names: Vec<String> = suite
            .benchmarks()
            .iter()
            .map(|b| b.app.name.clone())
            .collect();
        let profiles: Vec<JobProfile> = suite
            .benchmarks()
            .iter()
            .map(|b| profiler.profile(&b.app))
            .collect();
        (suite, profiles, names)
    }

    #[test]
    fn measured_classification_matches_table_iv() {
        let (suite, profiles, _) = setup();
        for (b, p) in suite.benchmarks().iter().zip(profiles.iter()) {
            assert_eq!(
                classify_profile(p),
                b.class,
                "{} misclassified from measurements",
                b.app.name
            );
        }
    }

    #[test]
    fn reconstruction_recovers_key_parameters() {
        let (suite, profiles, names) = setup();
        let arch = suite.arch();
        for ((b, p), n) in suite.benchmarks().iter().zip(&profiles).zip(&names) {
            let rec = reconstruct_app(n, p, arch);
            assert!(
                (rec.mem_demand - b.app.mem_demand).abs() < 0.08,
                "{n}: b {} vs {}",
                rec.mem_demand,
                b.app.mem_demand
            );
            assert!(
                (rec.compute_demand - b.app.compute_demand).abs() < 0.12,
                "{n}: u {} vs {}",
                rec.compute_demand,
                b.app.compute_demand
            );
            assert!(
                (rec.solo_time - b.app.solo_time).abs() / b.app.solo_time < 0.05,
                "{n}: t"
            );
        }
    }

    #[test]
    fn predictions_track_ground_truth() {
        // The predictor's ranking of configurations must correlate with
        // the "hardware": check on a complementary pair that prediction
        // and ground truth agree the skewed split beats the inverted one.
        let (suite, profiles, names) = setup();
        let arch = suite.arch().clone();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let pred = CoRunPredictor::new(&name_refs, &profiles, &arch, EngineConfig::default());
        let bt = suite.index_of("bt_solver_A").unwrap();
        let sp = suite.index_of("sp_solver_B").unwrap();

        let good = PartitionScheme::mps_only(vec![0.7, 0.3]) // CI big
            .compile(&arch)
            .unwrap();
        let bad = PartitionScheme::mps_only(vec![0.2, 0.8]) // CI starved
            .compile(&arch)
            .unwrap();
        let m_good = pred.predict_makespan(&[bt, sp], &good, &[0, 1]);
        let m_bad = pred.predict_makespan(&[bt, sp], &bad, &[0, 1]);
        assert!(m_good < m_bad, "predicted {m_good} vs {m_bad}");

        // And prediction error versus ground truth stays moderate.
        use crate::problem::evaluate_group;
        use hrp_workloads::JobQueue;
        let queue = JobQueue::from_names("p", &["bt_solver_A", "sp_solver_B"], &suite);
        let truth = evaluate_group(
            &suite,
            &queue,
            &[0, 1],
            &PartitionScheme::mps_only(vec![0.7, 0.3]),
            &[0, 1],
            &arch,
            &EngineConfig::default(),
        );
        let rel_err = (m_good - truth.corun_time).abs() / truth.corun_time;
        assert!(rel_err < 0.25, "prediction off by {rel_err}");
    }

    #[test]
    fn best_assignment_orients_complementary_pairs() {
        let (suite, profiles, names) = setup();
        let arch = suite.arch().clone();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let pred = CoRunPredictor::new(&name_refs, &profiles, &arch, EngineConfig::default());
        let bt = suite.index_of("bt_solver_A").unwrap();
        let sp = suite.index_of("sp_solver_B").unwrap();
        let part = PartitionScheme::mps_only(vec![0.3, 0.7])
            .compile(&arch)
            .unwrap();
        let (_, assignment) = pred.predict_best_assignment(&[bt, sp], &part);
        // bt (CI) must land on the 0.7 slot (index 1).
        assert_eq!(assignment[0], 1, "CI on the big slot: {assignment:?}");
    }
}
