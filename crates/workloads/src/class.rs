//! The paper's application classification procedure (§V-A2, following
//! Arima et al., ICPP Workshops 2022 \[6\]):
//!
//! 1. if the performance degradation of a **1-GPC private-memory run**
//!    relative to the full 8-GPC run is below 10%, the application is
//!    **UnScalable (US)**;
//! 2. otherwise, if `Compute (SM) [%] / Memory [%] > 0.80` it is
//!    **Compute Intensive (CI)**;
//! 3. otherwise it is **Memory Intensive (MI)**.

use hrp_gpusim::arch::GpuArch;
use hrp_gpusim::perf::solo_rate;
use hrp_gpusim::AppModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Degradation threshold below which an app counts as UnScalable.
pub const US_DEGRADATION_THRESHOLD: f64 = 0.10;

/// `Compute (SM) [%] / Memory [%]` threshold above which a (scalable) app
/// counts as Compute Intensive.
pub const CI_RATIO_THRESHOLD: f64 = 0.80;

/// Application class per the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Class {
    /// Compute Intensive.
    Ci,
    /// Memory Intensive.
    Mi,
    /// UnScalable.
    Us,
}

impl Class {
    /// All classes, in the paper's listing order.
    pub const ALL: [Class; 3] = [Class::Ci, Class::Mi, Class::Us];

    /// Paper-style short name.
    #[must_use]
    pub fn short(self) -> &'static str {
        match self {
            Class::Ci => "CI",
            Class::Mi => "MI",
            Class::Us => "US",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// The measured slowdown of a 1-GPC private run versus the full GPU
/// (this is what the paper measures on hardware; here it is evaluated on
/// the simulator's rate model).
#[must_use]
pub fn one_gpc_degradation(app: &AppModel, arch: &GpuArch) -> f64 {
    let one_gpc = solo_rate(app, arch.gpc_fraction(), arch.mem_slice_fraction());
    (1.0 - one_gpc).max(0.0)
}

/// Classify an application with the paper's procedure.
#[must_use]
pub fn classify(app: &AppModel, arch: &GpuArch) -> Class {
    if one_gpc_degradation(app, arch) < US_DEGRADATION_THRESHOLD {
        Class::Us
    } else if app.compute_memory_ratio() > CI_RATIO_THRESHOLD {
        Class::Ci
    } else {
        Class::Mi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> GpuArch {
        GpuArch::a100()
    }

    #[test]
    fn compute_hungry_app_is_ci() {
        let app = AppModel::builder("ci")
            .parallel_fraction(0.96)
            .compute_demand(0.9)
            .mem_demand(0.3)
            .utilisation(85.0, 35.0)
            .build();
        assert_eq!(classify(&app, &arch()), Class::Ci);
    }

    #[test]
    fn bandwidth_hungry_app_is_mi() {
        let app = AppModel::builder("mi")
            .parallel_fraction(0.93)
            .compute_demand(0.4)
            .mem_demand(0.85)
            .utilisation(45.0, 80.0)
            .build();
        assert_eq!(classify(&app, &arch()), Class::Mi);
    }

    #[test]
    fn undemanding_app_is_us() {
        let app = AppModel::builder("us")
            .parallel_fraction(0.2)
            .compute_demand(0.42)
            .mem_demand(0.1)
            .utilisation(35.0, 30.0)
            .build();
        assert_eq!(classify(&app, &arch()), Class::Us);
        assert!(one_gpc_degradation(&app, &arch()) < US_DEGRADATION_THRESHOLD);
    }

    #[test]
    fn us_takes_priority_over_ratio() {
        // High SM/Memory ratio but unscalable → still US (the procedure
        // checks scalability first).
        let app = AppModel::builder("us-ci-ish")
            .parallel_fraction(0.1)
            .compute_demand(0.3)
            .mem_demand(0.05)
            .utilisation(60.0, 20.0)
            .build();
        assert_eq!(classify(&app, &arch()), Class::Us);
    }

    #[test]
    fn boundary_ratio_is_mi() {
        // Exactly at the 0.8 ratio → not strictly greater → MI.
        let app = AppModel::builder("edge")
            .parallel_fraction(0.95)
            .compute_demand(0.8)
            .mem_demand(0.6)
            .utilisation(40.0, 50.0)
            .build();
        assert_eq!(classify(&app, &arch()), Class::Mi);
    }

    #[test]
    fn degradation_is_clamped_nonnegative() {
        let app = AppModel::builder("free")
            .parallel_fraction(0.01)
            .compute_demand(0.05)
            .mem_demand(0.01)
            .build();
        let d = one_gpc_degradation(&app, &arch());
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn class_display_names() {
        assert_eq!(Class::Ci.to_string(), "CI");
        assert_eq!(Class::Mi.to_string(), "MI");
        assert_eq!(Class::Us.to_string(), "US");
    }
}
