//! The hierarchical partition tree and its compiled (flat) form.
//!
//! A partition describes how one GPU is carved up for a co-scheduling
//! group, mirroring the paper's Fig. 2:
//!
//! * **MPS only** — the whole GPU is one memory domain; clients get
//!   compute-fraction caps (`[(0.3)+(0.7),1m]`).
//! * **MIG** — the GPU is split into GPU Instances, each owning private
//!   memory slices; each GI hosts Compute Instances, and each CI may run
//!   several MPS clients (the *hierarchical* option,
//!   `[(0.5)+(0.5){0.5},0.5m]+[{0.375},0.5m]`).
//!
//! [`PartitionScheme`] is the declarative description;
//! [`PartitionScheme::compile`] validates it against the MIG placement
//! rules and flattens it into [`CompiledPartition`] — a list of
//! [`Slot`]s (one per co-located program) referencing [`MemDomain`]s —
//! which is what the performance model consumes.

use crate::arch::GpuArch;
use crate::error::PartitionError;
use crate::mig::{GiProfile, MigConfig};
use crate::mps::validate_shares;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A compute instance inside a GPU instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CiSetup {
    /// GPC slices owned by this CI (must be a valid CI profile size and
    /// fit inside the parent GI).
    pub slices: u32,
    /// MPS shares of the clients running inside this CI, relative to the
    /// CI's own compute. Empty means a single exclusive client.
    pub mps_shares: Vec<f64>,
}

impl CiSetup {
    /// An exclusive CI (one client, no MPS subdivision).
    #[must_use]
    pub fn exclusive(slices: u32) -> Self {
        Self {
            slices,
            mps_shares: Vec::new(),
        }
    }

    /// A CI subdivided by MPS with the given relative shares.
    #[must_use]
    pub fn with_mps(slices: u32, mps_shares: Vec<f64>) -> Self {
        Self { slices, mps_shares }
    }

    /// Number of schedulable lanes this CI contributes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.mps_shares.len().max(1)
    }
}

/// A GPU instance: a MIG profile plus the compute instances on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GiSetup {
    /// The MIG profile of this GI.
    pub profile: GiProfile,
    /// Compute instances within the GI.
    pub cis: Vec<CiSetup>,
}

impl GiSetup {
    /// A GI fully occupied by one exclusive CI.
    #[must_use]
    pub fn exclusive(profile: GiProfile) -> Self {
        Self {
            profile,
            cis: vec![CiSetup::exclusive(profile.compute_slices())],
        }
    }

    /// A GI fully occupied by one CI running MPS clients.
    #[must_use]
    pub fn with_mps(profile: GiProfile, shares: Vec<f64>) -> Self {
        Self {
            profile,
            cis: vec![CiSetup::with_mps(profile.compute_slices(), shares)],
        }
    }
}

/// Declarative description of a hierarchical partitioning of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// MIG disabled: whole GPU (all 8 GPCs), one shared memory domain,
    /// MPS shares as fractions of the full GPU.
    MpsOnly {
        /// Per-client compute fractions (sum ≤ 1).
        shares: Vec<f64>,
    },
    /// MIG enabled: 7 of 8 GPCs usable; each GI owns private memory.
    Mig {
        /// The GPU instances.
        gis: Vec<GiSetup>,
    },
}

impl PartitionScheme {
    /// Whole-GPU MPS partitioning.
    #[must_use]
    pub fn mps_only(shares: Vec<f64>) -> Self {
        Self::MpsOnly { shares }
    }

    /// Exclusive use of the whole GPU by a single job (the degenerate
    /// `C = 1` scheme used for time sharing).
    #[must_use]
    pub fn exclusive() -> Self {
        Self::MpsOnly { shares: vec![1.0] }
    }

    /// The paper's *MIG only, shared memory* option (Fig. 2, option 2):
    /// one 7g GI whose memory is shared by a 3g CI and a 4g CI:
    /// `[{0.375}+{0.5},1m]`.
    #[must_use]
    pub fn mig_shared_3_4() -> Self {
        Self::Mig {
            gis: vec![GiSetup {
                profile: GiProfile::G7,
                cis: vec![CiSetup::exclusive(3), CiSetup::exclusive(4)],
            }],
        }
    }

    /// The paper's *MIG only, private memory* option (Fig. 2, option 3):
    /// two GIs with isolated memory: `[{0.375},0.5m]+[{0.5},0.5m]`.
    #[must_use]
    pub fn mig_private_3_4() -> Self {
        Self::Mig {
            gis: vec![
                GiSetup::exclusive(GiProfile::G3),
                GiSetup::exclusive(GiProfile::G4),
            ],
        }
    }

    /// Hierarchical MIG+MPS over private 3g/4g GIs (Fig. 2, option 4).
    /// Empty share lists mean the GI hosts a single exclusive job.
    #[must_use]
    pub fn hierarchical_3_4(shares_3g: Vec<f64>, shares_4g: Vec<f64>) -> Self {
        let gi3 = if shares_3g.is_empty() {
            GiSetup::exclusive(GiProfile::G3)
        } else {
            GiSetup::with_mps(GiProfile::G3, shares_3g)
        };
        let gi4 = if shares_4g.is_empty() {
            GiSetup::exclusive(GiProfile::G4)
        } else {
            GiSetup::with_mps(GiProfile::G4, shares_4g)
        };
        Self::Mig {
            gis: vec![gi3, gi4],
        }
    }

    /// Hierarchical MIG+MPS inside a *shared-memory* 7g GI: a 3g CI and a
    /// 4g CI, each optionally MPS-subdivided (the paper's
    /// `[{0.375}+(0.1),(0.9){0.5},1m]` family).
    #[must_use]
    pub fn hierarchical_shared_3_4(shares_3g: Vec<f64>, shares_4g: Vec<f64>) -> Self {
        let ci3 = if shares_3g.is_empty() {
            CiSetup::exclusive(3)
        } else {
            CiSetup::with_mps(3, shares_3g)
        };
        let ci4 = if shares_4g.is_empty() {
            CiSetup::exclusive(4)
        } else {
            CiSetup::with_mps(4, shares_4g)
        };
        Self::Mig {
            gis: vec![GiSetup {
                profile: GiProfile::G7,
                cis: vec![ci3, ci4],
            }],
        }
    }

    /// Does this scheme enable MIG (and thus lose one GPC)?
    #[must_use]
    pub fn uses_mig(&self) -> bool {
        matches!(self, Self::Mig { .. })
    }

    /// Number of co-schedulable lanes (MPS clients / exclusive CIs).
    #[must_use]
    pub fn lanes(&self) -> usize {
        match self {
            Self::MpsOnly { shares } => shares.len(),
            Self::Mig { gis } => gis
                .iter()
                .flat_map(|g| g.cis.iter())
                .map(CiSetup::lanes)
                .sum(),
        }
    }

    /// Validate the scheme and flatten it into slots and memory domains.
    pub fn compile(&self, arch: &GpuArch) -> Result<CompiledPartition, PartitionError> {
        match self {
            Self::MpsOnly { shares } => {
                validate_shares(shares)?;
                let domains = vec![MemDomain {
                    bandwidth_frac: 1.0,
                }];
                let slots = shares
                    .iter()
                    .map(|&s| Slot {
                        compute_frac: s,
                        domain: 0,
                        gi: 0,
                        ci: 0,
                    })
                    .collect();
                Ok(CompiledPartition {
                    slots,
                    domains,
                    mig_enabled: false,
                    mps_active: shares.len() > 1,
                })
            }
            Self::Mig { gis } => {
                if gis.is_empty() {
                    return Err(PartitionError::NoSlots);
                }
                // Placement feasibility of the GI multiset.
                let profiles: Vec<GiProfile> = gis.iter().map(|g| g.profile).collect();
                MigConfig::from_profiles(&profiles)?;

                let mut domains = Vec::with_capacity(gis.len());
                let mut slots = Vec::new();
                for (gi_idx, gi) in gis.iter().enumerate() {
                    if gi.cis.is_empty() {
                        return Err(PartitionError::EmptyGi);
                    }
                    let used: u32 = gi.cis.iter().map(|c| c.slices).sum();
                    let avail = gi.profile.compute_slices();
                    if used > avail {
                        return Err(PartitionError::CiOverflow {
                            requested: used,
                            available: avail,
                        });
                    }
                    for ci in &gi.cis {
                        if GiProfile::from_slices(ci.slices).is_none() {
                            return Err(PartitionError::InvalidCiSlices(ci.slices));
                        }
                    }
                    let domain = domains.len();
                    domains.push(MemDomain {
                        bandwidth_frac: gi.profile.mem_fraction(arch),
                    });
                    for (ci_idx, ci) in gi.cis.iter().enumerate() {
                        let ci_frac = f64::from(ci.slices) / f64::from(arch.gpcs);
                        if ci.mps_shares.is_empty() {
                            slots.push(Slot {
                                compute_frac: ci_frac,
                                domain,
                                gi: gi_idx,
                                ci: ci_idx,
                            });
                        } else {
                            validate_shares(&ci.mps_shares)?;
                            for &sh in &ci.mps_shares {
                                slots.push(Slot {
                                    compute_frac: ci_frac * sh,
                                    domain,
                                    gi: gi_idx,
                                    ci: ci_idx,
                                });
                            }
                        }
                    }
                }
                if slots.is_empty() {
                    return Err(PartitionError::NoSlots);
                }
                let mps_active = gis
                    .iter()
                    .flat_map(|g| g.cis.iter())
                    .any(|c| c.mps_shares.len() > 1);
                Ok(CompiledPartition {
                    slots,
                    domains,
                    mig_enabled: true,
                    mps_active,
                })
            }
        }
    }
}

impl fmt::Display for PartitionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::notation::format_scheme(self))
    }
}

/// One schedulable lane of a compiled partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    /// Compute capacity as a fraction of the *whole GPU's* SMs.
    pub compute_frac: f64,
    /// Index into [`CompiledPartition::domains`].
    pub domain: usize,
    /// Index of the owning GPU instance (0 for MPS-only).
    pub gi: usize,
    /// Index of the owning compute instance within the GI.
    pub ci: usize,
}

/// A memory domain: the bandwidth pool shared by the slots inside it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemDomain {
    /// DRAM bandwidth as a fraction of the whole GPU's peak.
    pub bandwidth_frac: f64,
}

/// Flattened, validated partition: what the performance model consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPartition {
    /// Schedulable lanes, in declaration order.
    pub slots: Vec<Slot>,
    /// Memory domains referenced by the slots.
    pub domains: Vec<MemDomain>,
    /// Whether MIG is enabled (one GPC disabled).
    pub mig_enabled: bool,
    /// Whether any compute instance (or the whole GPU) is subdivided by
    /// MPS — i.e. the MPS control daemon must run.
    pub mps_active: bool,
}

impl CompiledPartition {
    /// Total compute fraction allocated across all slots.
    #[must_use]
    pub fn total_compute(&self) -> f64 {
        self.slots.iter().map(|s| s.compute_frac).sum()
    }

    /// Slots sharing a memory domain with `slot` (excluding itself).
    #[must_use]
    pub fn domain_peers(&self, slot: usize) -> Vec<usize> {
        let d = self.slots[slot].domain;
        (0..self.slots.len())
            .filter(|&i| i != slot && self.slots[i].domain == d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuArch {
        GpuArch::a100()
    }

    #[test]
    fn mps_only_compiles_to_single_domain() {
        let p = PartitionScheme::mps_only(vec![0.3, 0.7])
            .compile(&a100())
            .unwrap();
        assert_eq!(p.domains.len(), 1);
        assert_eq!(p.slots.len(), 2);
        assert!(!p.mig_enabled);
        assert!((p.domains[0].bandwidth_frac - 1.0).abs() < 1e-12);
        assert!((p.total_compute() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exclusive_is_one_full_slot() {
        let p = PartitionScheme::exclusive().compile(&a100()).unwrap();
        assert_eq!(p.slots.len(), 1);
        assert!((p.slots[0].compute_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mig_shared_3_4_shares_one_domain() {
        let p = PartitionScheme::mig_shared_3_4().compile(&a100()).unwrap();
        assert_eq!(p.domains.len(), 1);
        assert_eq!(p.slots.len(), 2);
        assert!(p.mig_enabled);
        // 7g GI owns all memory.
        assert!((p.domains[0].bandwidth_frac - 1.0).abs() < 1e-12);
        // 3/8 and 4/8 compute; one GPC lost to MIG.
        assert!((p.slots[0].compute_frac - 0.375).abs() < 1e-12);
        assert!((p.slots[1].compute_frac - 0.5).abs() < 1e-12);
        assert!((p.total_compute() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn mig_private_3_4_isolates_domains() {
        let p = PartitionScheme::mig_private_3_4().compile(&a100()).unwrap();
        assert_eq!(p.domains.len(), 2);
        assert_eq!(p.slots.len(), 2);
        assert!((p.domains[0].bandwidth_frac - 0.5).abs() < 1e-12);
        assert!((p.domains[1].bandwidth_frac - 0.5).abs() < 1e-12);
        assert_ne!(p.slots[0].domain, p.slots[1].domain);
        assert!(p.domain_peers(0).is_empty());
    }

    #[test]
    fn hierarchical_3_4_yields_four_lanes() {
        let s = PartitionScheme::hierarchical_3_4(vec![0.5, 0.5], vec![0.3, 0.7]);
        assert_eq!(s.lanes(), 4);
        let p = s.compile(&a100()).unwrap();
        assert_eq!(p.slots.len(), 4);
        assert_eq!(p.domains.len(), 2);
        // 3g lanes: 0.375 * 0.5 each.
        assert!((p.slots[0].compute_frac - 0.1875).abs() < 1e-12);
        // 4g lanes: 0.5 * 0.3 and 0.5 * 0.7.
        assert!((p.slots[2].compute_frac - 0.15).abs() < 1e-12);
        assert!((p.slots[3].compute_frac - 0.35).abs() < 1e-12);
        // Peers only within each GI.
        assert_eq!(p.domain_peers(0), vec![1]);
        assert_eq!(p.domain_peers(2), vec![3]);
    }

    #[test]
    fn hierarchical_shared_keeps_one_domain() {
        let s = PartitionScheme::hierarchical_shared_3_4(vec![], vec![0.5, 0.5]);
        let p = s.compile(&a100()).unwrap();
        assert_eq!(p.domains.len(), 1);
        assert_eq!(p.slots.len(), 3);
        assert_eq!(p.domain_peers(0), vec![1, 2]);
    }

    #[test]
    fn ci_overflow_rejected() {
        let s = PartitionScheme::Mig {
            gis: vec![GiSetup {
                profile: GiProfile::G3,
                cis: vec![CiSetup::exclusive(4)],
            }],
        };
        assert!(matches!(
            s.compile(&a100()),
            Err(PartitionError::CiOverflow { .. })
        ));
    }

    #[test]
    fn invalid_ci_size_rejected() {
        let s = PartitionScheme::Mig {
            gis: vec![GiSetup {
                profile: GiProfile::G7,
                cis: vec![CiSetup::exclusive(5)],
            }],
        };
        assert!(matches!(
            s.compile(&a100()),
            Err(PartitionError::InvalidCiSlices(5))
        ));
    }

    #[test]
    fn unplaceable_gi_multiset_rejected() {
        let s = PartitionScheme::Mig {
            gis: vec![
                GiSetup::exclusive(GiProfile::G4),
                GiSetup::exclusive(GiProfile::G4),
            ],
        };
        assert!(matches!(
            s.compile(&a100()),
            Err(PartitionError::Unplaceable(_))
        ));
    }

    #[test]
    fn bad_mps_shares_rejected() {
        let s = PartitionScheme::mps_only(vec![0.8, 0.8]);
        assert!(s.compile(&a100()).is_err());
        let s = PartitionScheme::hierarchical_3_4(vec![1.5], vec![]);
        assert!(s.compile(&a100()).is_err());
    }

    #[test]
    fn lanes_counts_match_compiled_slots() {
        let schemes = [
            PartitionScheme::exclusive(),
            PartitionScheme::mps_only(vec![0.25; 4]),
            PartitionScheme::mig_shared_3_4(),
            PartitionScheme::mig_private_3_4(),
            PartitionScheme::hierarchical_3_4(vec![0.5, 0.5], vec![0.5, 0.5]),
            PartitionScheme::hierarchical_shared_3_4(vec![0.2, 0.8], vec![]),
        ];
        for s in schemes {
            let compiled = s.compile(&a100()).unwrap();
            assert_eq!(s.lanes(), compiled.slots.len(), "scheme {s:?}");
        }
    }
}
