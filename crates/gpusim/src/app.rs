//! The application (GPU kernel workload) model.
//!
//! An [`AppModel`] abstracts a GPU program by the handful of parameters
//! that determine its co-run behaviour. The parameters correspond to what
//! the paper measures with Nsight Compute (Table III) and to the
//! classification of its Table IV:
//!
//! * **parallel fraction** `f` — the Amdahl fraction: how much of the
//!   program's work scales with the number of SMs. Unscalable (US)
//!   applications have tiny `f` (the paper classifies an app as US when a
//!   1-GPC private run degrades performance by < 10%).
//! * **memory demand** `b` — the fraction of full-GPU DRAM bandwidth the
//!   app consumes when running unthrottled. Memory-intensive (MI) apps
//!   approach 1.
//! * **interference sensitivity** `σ` — extra slowdown per unit of
//!   *foreign* DRAM traffic in the same memory domain (LLC thrashing and
//!   row-buffer conflicts). This is the mechanism MIG isolation removes
//!   and MPS cannot (paper Fig. 4).
//! * **solo time** — full-GPU runtime in seconds; rates are normalized so
//!   a solo full-GPU run progresses at rate 1.

use serde::{Deserialize, Serialize};

/// Parameters of one GPU application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Program name (doubles as the profile-repository key).
    pub name: String,
    /// Amdahl parallel fraction in `[0, 1)`.
    pub parallel_fraction: f64,
    /// Fraction of the full GPU's compute throughput the app actually
    /// needs to progress at full speed, in `(0, 1]` (the roofline compute
    /// requirement). Memory-bound apps have small values: they saturate
    /// DRAM with a fraction of the SMs, so capping their SM share barely
    /// hurts until the cap crosses this demand.
    pub compute_demand: f64,
    /// Unthrottled DRAM bandwidth demand as a fraction of the full GPU's
    /// peak, in `(0, 1]`.
    pub mem_demand: f64,
    /// Slowdown per unit of foreign same-domain DRAM traffic (≥ 0).
    pub interference_sensitivity: f64,
    /// Co-residency overhead coefficient: with `m` clients sharing the
    /// app's memory domain the app slows by `1 / (1 + κ·(m−1)²)` (LLC
    /// thrash and controller queueing grow superlinearly). MIG isolation
    /// removes this entirely; MPS cannot.
    pub crowd_sensitivity: f64,
    /// Solo full-GPU execution time in seconds.
    pub solo_time: f64,
    /// Ground-truth `Compute (SM) [%]` utilisation (0–100).
    pub sm_pct: f64,
    /// Ground-truth `Memory [%]` utilisation (0–100).
    pub mem_pct: f64,
    /// Working set in MiB (drives cache counters only).
    pub working_set_mib: f64,
    /// Kernel grid size (CTAs) — profiling colour only.
    pub grid_size: u64,
    /// Registers per thread — profiling colour only.
    pub regs_per_thread: u32,
    /// Waves per SM — profiling colour only.
    pub waves_per_sm: f64,
    /// Achieved active warps per SM (0–64) — profiling colour only.
    pub achieved_warps: f64,
}

impl AppModel {
    /// Start building an [`AppModel`]; unspecified fields get neutral
    /// defaults.
    #[must_use]
    pub fn builder(name: &str) -> AppModelBuilder {
        AppModelBuilder::new(name)
    }

    /// Amdahl speedup of running on a fraction `c ∈ (0, 1]` of the SMs,
    /// normalized so `amdahl_speedup(1.0) == 1.0`:
    ///
    /// `S(c) = 1 / ((1 - f) + f / c)`.
    #[must_use]
    pub fn amdahl_speedup(&self, c: f64) -> f64 {
        let c = c.clamp(1e-6, 1.0);
        let f = self.parallel_fraction;
        1.0 / ((1.0 - f) + f / c)
    }

    /// Compute-limited progress rate on a fraction `c` of the SMs:
    /// the Amdahl-scaled capability divided by the app's compute
    /// requirement, capped at 1 (roofline compute leg).
    #[must_use]
    pub fn compute_rate(&self, c: f64) -> f64 {
        (self.amdahl_speedup(c) / self.compute_demand).min(1.0)
    }

    /// The bandwidth (fraction of full-GPU peak) the app would consume
    /// when progressing at `rate` (relative to solo full-GPU).
    #[must_use]
    pub fn bandwidth_at_rate(&self, rate: f64) -> f64 {
        self.mem_demand * rate
    }

    /// Compute-to-memory counter ratio used by the paper's classification
    /// (`Compute (SM) [%] / Memory [%] > 0.8` ⇒ compute-intensive).
    #[must_use]
    pub fn compute_memory_ratio(&self) -> f64 {
        if self.mem_pct <= 0.0 {
            f64::INFINITY
        } else {
            self.sm_pct / self.mem_pct
        }
    }
}

/// Builder for [`AppModel`].
#[derive(Debug, Clone)]
pub struct AppModelBuilder {
    model: AppModel,
}

impl AppModelBuilder {
    fn new(name: &str) -> Self {
        Self {
            model: AppModel {
                name: name.to_owned(),
                parallel_fraction: 0.9,
                compute_demand: 0.7,
                mem_demand: 0.3,
                interference_sensitivity: 0.1,
                crowd_sensitivity: 0.12,
                solo_time: 10.0,
                sm_pct: 60.0,
                mem_pct: 40.0,
                working_set_mib: 512.0,
                grid_size: 4096,
                regs_per_thread: 48,
                waves_per_sm: 4.0,
                achieved_warps: 40.0,
            },
        }
    }

    /// Set the Amdahl parallel fraction (clamped to `[0, 0.9999]`).
    #[must_use]
    pub fn parallel_fraction(mut self, f: f64) -> Self {
        self.model.parallel_fraction = f.clamp(0.0, 0.9999);
        self
    }

    /// Set the unthrottled bandwidth demand (clamped to `(0, 1]`).
    #[must_use]
    pub fn mem_demand(mut self, b: f64) -> Self {
        self.model.mem_demand = b.clamp(1e-3, 1.0);
        self
    }

    /// Set the roofline compute requirement (clamped to `(0, 1]`).
    #[must_use]
    pub fn compute_demand(mut self, u: f64) -> Self {
        self.model.compute_demand = u.clamp(1e-3, 1.0);
        self
    }

    /// Set the interference sensitivity (≥ 0).
    #[must_use]
    pub fn interference_sensitivity(mut self, s: f64) -> Self {
        self.model.interference_sensitivity = s.max(0.0);
        self
    }

    /// Set the co-residency sensitivity (≥ 0).
    #[must_use]
    pub fn crowd_sensitivity(mut self, s: f64) -> Self {
        self.model.crowd_sensitivity = s.max(0.0);
        self
    }

    /// Set the solo full-GPU runtime in seconds.
    #[must_use]
    pub fn solo_time(mut self, t: f64) -> Self {
        self.model.solo_time = t.max(1e-6);
        self
    }

    /// Set the ground-truth SM and memory utilisation percentages.
    #[must_use]
    pub fn utilisation(mut self, sm_pct: f64, mem_pct: f64) -> Self {
        self.model.sm_pct = sm_pct.clamp(0.0, 100.0);
        self.model.mem_pct = mem_pct.clamp(0.0, 100.0);
        self
    }

    /// Set the working-set size in MiB.
    #[must_use]
    pub fn working_set_mib(mut self, ws: f64) -> Self {
        self.model.working_set_mib = ws.max(1.0);
        self
    }

    /// Set profiling-colour occupancy figures.
    #[must_use]
    pub fn occupancy(mut self, grid: u64, regs: u32, waves: f64, warps: f64) -> Self {
        self.model.grid_size = grid;
        self.model.regs_per_thread = regs;
        self.model.waves_per_sm = waves;
        self.model.achieved_warps = warps;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> AppModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_is_normalized_and_monotone() {
        let app = AppModel::builder("x").parallel_fraction(0.95).build();
        assert!((app.amdahl_speedup(1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 1..=10 {
            let c = f64::from(i) / 10.0;
            let s = app.amdahl_speedup(c);
            assert!(s > prev, "monotone in c");
            assert!(s <= 1.0 + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn unscalable_apps_barely_degrade() {
        // f = 0.01 → 1-GPC run keeps > 93% of full speed.
        let us = AppModel::builder("us").parallel_fraction(0.01).build();
        assert!(us.amdahl_speedup(0.125) > 0.93);
        // f = 0.97 → 1-GPC run is crushed.
        let ci = AppModel::builder("ci").parallel_fraction(0.97).build();
        assert!(ci.amdahl_speedup(0.125) < 0.15);
    }

    #[test]
    fn compute_rate_respects_roofline() {
        // A memory-bound app needing only 30% of the SMs keeps most of
        // its speed when capped at 30% of the GPU.
        let mi = AppModel::builder("mi")
            .parallel_fraction(0.95)
            .compute_demand(0.3)
            .build();
        assert!(mi.compute_rate(0.3) > 0.95, "{}", mi.compute_rate(0.3));
        assert!((mi.compute_rate(1.0) - 1.0).abs() < 1e-12);
        // A compute-hungry app is throttled nearly proportionally.
        let ci = AppModel::builder("ci")
            .parallel_fraction(0.97)
            .compute_demand(0.9)
            .build();
        assert!(ci.compute_rate(0.5) < 0.62);
        assert!(ci.compute_rate(0.5) > ci.compute_rate(0.25));
    }

    #[test]
    fn bandwidth_scales_with_rate() {
        let app = AppModel::builder("x").mem_demand(0.8).build();
        assert!((app.bandwidth_at_rate(1.0) - 0.8).abs() < 1e-12);
        assert!((app.bandwidth_at_rate(0.5) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn builder_clamps() {
        let app = AppModel::builder("x")
            .parallel_fraction(1.5)
            .mem_demand(7.0)
            .interference_sensitivity(-1.0)
            .solo_time(-3.0)
            .build();
        assert!(app.parallel_fraction < 1.0);
        assert!(app.mem_demand <= 1.0);
        assert_eq!(app.interference_sensitivity, 0.0);
        assert!(app.solo_time > 0.0);
    }

    #[test]
    fn compute_memory_ratio_matches_definition() {
        let app = AppModel::builder("x").utilisation(80.0, 40.0).build();
        assert!((app.compute_memory_ratio() - 2.0).abs() < 1e-12);
        let zero = AppModel::builder("z").utilisation(50.0, 0.0).build();
        assert!(zero.compute_memory_ratio().is_infinite());
    }
}
