//! The long-running scheduler service core.
//!
//! [`SchedulerService`] wraps a [`ClusterDrive`] behind an
//! event-driven ingest loop: each [`SchedulerService::step`] pulls
//! one arrival burst from the [`ArrivalSource`], runs one
//! *incremental scheduling cycle* at that instant, and routes every
//! job of the burst through the selector. A cycle re-plans only the
//! nodes whose slot profile can still change — quiescent nodes (idle,
//! no pending dispatch, no wakeup hint) are skipped entirely under
//! [`CycleMode::Incremental`] — yet the produced
//! [`ClusterTimeline`](hrp_cluster::multinode::ClusterTimeline) is
//! bit-identical to a batch [`MultiNodeSim`](hrp_cluster::multinode::MultiNodeSim)
//! replay of the same finite trace: skipping a quiescent node is a
//! provable no-op (its state cannot change and its load snapshot is
//! time-invariant), so the batch engines survive as the oracle.
//!
//! When the source has nothing to offer, the service sizes its idle
//! sleep from the dispatchers' [`next_wakeup`](hrp_cluster::sim::Dispatcher::next_wakeup)
//! hints: [`SchedulerService::next_wakeup`] is the earliest instant
//! any node wants a cycle with no job event in between (a backfill
//! reservation expiring), and [`SchedulerService::wake_cycle`] runs
//! exactly there.

use crate::source::{ArrivalSource, SourcePoll};
use hrp_cluster::backfill::BackfillPlanner;
use hrp_cluster::cosched::CoSchedulingDispatcher;
use hrp_cluster::job::ClusterJob;
use hrp_cluster::multinode::{ClusterDrive, MultiNodeReport};
use hrp_cluster::place::{PlacementAgent, PlacementDispatcher};
use hrp_cluster::select::{
    BackfillTier, LeastLoaded, NodeSelector, PolicySelector, RoundRobin, SelectorKind,
};
use hrp_core::policies::MpsOnly;
use hrp_core::rl::DqnSnapshot;
use hrp_workloads::Suite;
use std::time::Instant;

/// Window size of each node's co-scheduling dispatcher — kept equal
/// to the batch evaluation geometry (`hrp-bench`'s `CLUSTER_W`) so
/// service runs are digest-comparable to `repro cluster` rows.
pub const SERVE_W: usize = 4;
/// Concurrency cap of each node's co-scheduling dispatcher (mirrors
/// `hrp-bench`'s `CLUSTER_CMAX`).
pub const SERVE_CMAX: usize = 4;

/// How much of the cluster a scheduling cycle touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleMode {
    /// Re-plan only non-quiescent nodes (the dirty set) — the online
    /// default.
    Incremental,
    /// Advance every node every cycle, exactly like the batch epoch
    /// barrier — the reference the incremental counters are compared
    /// against.
    Full,
}

impl CycleMode {
    /// Parse a CLI-style name (`incremental` / `full`).
    ///
    /// # Errors
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "incremental" => Ok(Self::Incremental),
            "full" => Ok(Self::Full),
            other => Err(other.to_owned()),
        }
    }

    /// The CLI-style name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Incremental => "incremental",
            Self::Full => "full",
        }
    }
}

/// Service geometry and cycle policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Cluster nodes (1..=64).
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Walltime-estimate error handed to backfilling planners
    /// (ignored by the co-scheduling dispatcher kinds).
    pub walltime_err: f64,
    /// Cycle mode.
    pub mode: CycleMode,
}

impl ServeConfig {
    /// An incremental-mode service of `nodes` × `gpus_per_node` with
    /// exact walltime estimates.
    #[must_use]
    pub fn new(nodes: usize, gpus_per_node: usize) -> Self {
        Self {
            nodes,
            gpus_per_node,
            walltime_err: 0.0,
            mode: CycleMode::Incremental,
        }
    }

    /// Builder: walltime-estimate error fraction (see
    /// [`BackfillPlanner::with_walltime_err`]).
    #[must_use]
    pub fn walltime_err(mut self, err: f64) -> Self {
        self.walltime_err = err;
        self
    }

    /// Builder: cycle mode.
    #[must_use]
    pub fn mode(mut self, mode: CycleMode) -> Self {
        self.mode = mode;
        self
    }
}

/// The node-local dispatcher a selector kind schedules through, at
/// the service geometry: backfill tiers get a [`BackfillPlanner`] of
/// their policy, everything else the co-scheduling window dispatcher —
/// the same mapping `repro cluster` uses, which is what keeps service
/// and batch digests comparable per selector.
#[must_use]
pub fn dispatcher_for(
    kind: SelectorKind,
    gpus_per_node: usize,
    walltime_err: f64,
) -> PlacementDispatcher {
    match kind.backfill_policy() {
        Some(policy) => PlacementDispatcher::Backfill(
            BackfillPlanner::new(policy, gpus_per_node).with_walltime_err(walltime_err),
        ),
        None => {
            PlacementDispatcher::CoSched(CoSchedulingDispatcher::new(MpsOnly, SERVE_W, SERVE_CMAX))
        }
    }
}

/// The concrete selector state the service owns — the checkpointable
/// closed set of [`SelectorKind`]s plus the trained-policy tier.
pub(crate) enum SelectorState {
    /// Cyclic placement (cursor is checkpointed).
    RoundRobin(RoundRobin),
    /// Greedy least-outstanding-work placement (stateless).
    LeastLoaded(LeastLoaded),
    /// Least-loaded placement labeled by its backfill policy
    /// (stateless).
    Backfill(BackfillTier),
    /// A frozen RL policy: the agent (checkpointed as an embedded
    /// `HRPP` blob) plus the greedy selector wrapping its snapshot.
    Policy(Box<PlacementAgent>, Box<PolicySelector<DqnSnapshot>>),
}

impl SelectorState {
    pub(crate) fn from_kind(kind: SelectorKind) -> Self {
        match kind {
            SelectorKind::RoundRobin => Self::RoundRobin(RoundRobin::new()),
            SelectorKind::LeastLoaded => Self::LeastLoaded(LeastLoaded),
            SelectorKind::Policy => panic!(
                "SelectorKind::Policy needs a trained agent; \
                 build the service via SchedulerService::with_agent"
            ),
            SelectorKind::Fcfs | SelectorKind::Easy | SelectorKind::Conservative => {
                Self::Backfill(BackfillTier::new(kind.backfill_policy().expect("tier")))
            }
        }
    }

    pub(crate) fn from_agent(agent: PlacementAgent) -> Self {
        let selector = agent.selector();
        Self::Policy(Box::new(agent), Box::new(selector))
    }

    pub(crate) fn kind(&self) -> SelectorKind {
        match self {
            Self::RoundRobin(_) => SelectorKind::RoundRobin,
            Self::LeastLoaded(_) => SelectorKind::LeastLoaded,
            Self::Backfill(tier) => match tier.name() {
                "fcfs" => SelectorKind::Fcfs,
                "easy" => SelectorKind::Easy,
                _ => SelectorKind::Conservative,
            },
            Self::Policy(..) => SelectorKind::Policy,
        }
    }

    fn select(&mut self, gpus: usize, work: f64, loads: &[hrp_cluster::select::NodeLoad]) -> usize {
        match self {
            Self::RoundRobin(s) => s.select(gpus, work, loads),
            Self::LeastLoaded(s) => s.select(gpus, work, loads),
            Self::Backfill(s) => s.select(gpus, work, loads),
            Self::Policy(_, s) => s.select(gpus, work, loads),
        }
    }
}

/// Logical per-service counters, in the style of
/// [`SyncStats`](hrp_cluster::multinode::SyncStats): pure functions
/// of the input stream and the cycle mode, never of wall clock or
/// thread count — so tests can pin them and the incremental-vs-full
/// savings claim is reproducible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Scheduling cycles triggered by arrival bursts.
    pub cycles: u64,
    /// Idle cycles triggered by wakeup hints ([`SchedulerService::settle`] /
    /// [`SchedulerService::wake_cycle`]).
    pub wake_cycles: u64,
    /// Placement decisions made (one per ingested job).
    pub decisions: u64,
    /// Node re-plans: a node advanced + load-refreshed during a cycle.
    pub nodes_replanned: u64,
    /// Nodes skipped as quiescent by the incremental dirty set.
    pub nodes_skipped: u64,
}

/// Decision-latency summary over one service run (microseconds,
/// nearest-rank percentiles). Wall-clock measurement — excluded from
/// checkpoints and never part of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Decisions timed.
    pub samples: usize,
    /// Median decision latency in µs.
    pub p50_us: f64,
    /// 99th-percentile decision latency in µs.
    pub p99_us: f64,
    /// Worst decision latency in µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarise raw per-decision seconds (empty input → all zeros).
    #[must_use]
    pub fn from_seconds(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                samples: 0,
                p50_us: 0.0,
                p99_us: 0.0,
                max_us: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| -> f64 {
            // Nearest-rank percentile: ceil(q·n) clamped into range.
            let i = (q * sorted.len() as f64).ceil() as usize;
            sorted[i.clamp(1, sorted.len()) - 1] * 1e6
        };
        Self {
            samples: sorted.len(),
            p50_us: rank(0.50),
            p99_us: rank(0.99),
            max_us: sorted[sorted.len() - 1] * 1e6,
        }
    }
}

/// What one [`SchedulerService::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceStep {
    /// Ran a scheduling cycle at `time`, placing `jobs` jobs.
    Cycle {
        /// The arrival instant the cycle ran at.
        time: f64,
        /// Jobs placed (the burst size).
        jobs: usize,
    },
    /// The source had nothing available right now; the caller may
    /// sleep until [`SchedulerService::next_wakeup`] or until new
    /// input is known to exist.
    Pending,
    /// The source is exhausted — call [`SchedulerService::finish`].
    Closed,
}

/// Everything a finished service run reports.
#[derive(Debug)]
pub struct ServeReport {
    /// The drained cluster report — aggregate, per-node, and the
    /// merged deterministic timeline (digest-comparable to batch).
    pub report: MultiNodeReport,
    /// Logical service counters.
    pub stats: ServeStats,
    /// Wall-clock decision-latency summary.
    pub latency: LatencySummary,
}

/// A long-running scheduler service: ingest loop, incremental cycles,
/// and (via [`crate::checkpoint`]) live `HRPS` checkpoint/restore.
///
/// Draining a finite source reproduces the batch engines bit-exactly:
///
/// ```
/// use hrp_cluster::multinode::MultiNodeSim;
/// use hrp_cluster::select::SelectorKind;
/// use hrp_cluster::trace::{generate, TraceConfig, TraceKind};
/// use hrp_gpusim::GpuArch;
/// use hrp_serve::{SchedulerService, ServeConfig, TraceSource};
/// use hrp_workloads::Suite;
///
/// let suite = Suite::paper_suite(&GpuArch::a100());
/// // A thin trace (long mean gap) so nodes drain between bursts and
/// // the incremental dirty set has something to skip.
/// let cfg = TraceConfig::new(TraceKind::Bursty, 24, 7)
///     .gang_share(0.25)
///     .mean_gap(40.0);
///
/// // Online: stream the arrivals through the service.
/// let source = TraceSource::new(&suite, cfg.clone());
/// let mut service = SchedulerService::new(
///     &suite,
///     ServeConfig::new(4, 2),
///     SelectorKind::LeastLoaded,
///     source,
/// );
/// service.run_to_close();
/// let served = service.finish();
///
/// // Batch oracle: the same trace through MultiNodeSim.
/// let mut selector = SelectorKind::LeastLoaded.build();
/// let batch = MultiNodeSim::new(4, 2).run(
///     &suite,
///     generate(&suite, &cfg),
///     selector.as_mut(),
///     |_| hrp_serve::dispatcher_for(SelectorKind::LeastLoaded, 2, 0.0),
/// );
/// assert_eq!(served.report.timeline.digest(), batch.timeline.digest());
/// assert!(served.stats.nodes_skipped > 0, "dirty set saved re-plans");
/// ```
pub struct SchedulerService<'a, S: ArrivalSource> {
    pub(crate) suite: &'a Suite,
    pub(crate) cfg: ServeConfig,
    pub(crate) drive: ClusterDrive<'a, PlacementDispatcher>,
    pub(crate) selector: SelectorState,
    pub(crate) source: S,
    /// The first arrival of the *next* burst, pulled while grouping
    /// the current one.
    pub(crate) lookahead: Option<ClusterJob>,
    /// Instant of the last cycle — arrivals must not move backwards.
    pub(crate) last_cycle: f64,
    pub(crate) stats: ServeStats,
    pub(crate) latencies: Vec<f64>,
}

impl<'a, S: ArrivalSource> SchedulerService<'a, S> {
    /// A fresh service over a heuristic selector kind.
    ///
    /// # Panics
    /// Panics for [`SelectorKind::Policy`] (use
    /// [`SchedulerService::with_agent`]) and on geometry the cluster
    /// rejects (0 or more than 64 nodes).
    #[must_use]
    pub fn new(suite: &'a Suite, cfg: ServeConfig, kind: SelectorKind, source: S) -> Self {
        Self::build(suite, cfg, SelectorState::from_kind(kind), source)
    }

    /// A fresh service placing through a trained (or untrained)
    /// placement agent — the frozen-policy global tier.
    #[must_use]
    pub fn with_agent(
        suite: &'a Suite,
        cfg: ServeConfig,
        agent: PlacementAgent,
        source: S,
    ) -> Self {
        Self::build(suite, cfg, SelectorState::from_agent(agent), source)
    }

    /// Like [`SchedulerService::new`] with explicitly-built node
    /// dispatchers — the hook for pre-loading backfill planners with
    /// advance reservations
    /// ([`BackfillPlanner::with_reservation`]). Reservations live in
    /// the planner's exported [`BackfillState`](hrp_cluster::backfill::BackfillState),
    /// so such a service still checkpoints and restores exactly.
    ///
    /// # Panics
    /// Same conditions as [`SchedulerService::new`].
    #[must_use]
    pub fn with_dispatchers(
        suite: &'a Suite,
        cfg: ServeConfig,
        kind: SelectorKind,
        source: S,
        make_dispatcher: impl FnMut(usize) -> PlacementDispatcher,
    ) -> Self {
        let drive = ClusterDrive::new(suite, cfg.nodes, cfg.gpus_per_node, make_dispatcher);
        Self {
            suite,
            cfg,
            drive,
            selector: SelectorState::from_kind(kind),
            source,
            lookahead: None,
            last_cycle: 0.0,
            stats: ServeStats::default(),
            latencies: Vec::new(),
        }
    }

    pub(crate) fn build(
        suite: &'a Suite,
        cfg: ServeConfig,
        selector: SelectorState,
        source: S,
    ) -> Self {
        let kind = selector.kind();
        let drive = ClusterDrive::new(suite, cfg.nodes, cfg.gpus_per_node, |_| {
            dispatcher_for(kind, cfg.gpus_per_node, cfg.walltime_err)
        });
        Self {
            suite,
            cfg,
            drive,
            selector,
            source,
            lookahead: None,
            last_cycle: 0.0,
            stats: ServeStats::default(),
            latencies: Vec::new(),
        }
    }

    /// The service geometry.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The selector kind placements run through.
    #[must_use]
    pub fn selector_kind(&self) -> SelectorKind {
        self.selector.kind()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Jobs the source has handed out so far.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.source.consumed()
    }

    /// The earliest instant any node's dispatcher wants a cycle with
    /// no job event in between — the idle-sleep bound for a service
    /// whose source is [`SourcePoll::Pending`].
    #[must_use]
    pub fn next_wakeup(&self) -> Option<f64> {
        self.drive.next_wakeup()
    }

    /// Ingest one arrival burst and run one scheduling cycle.
    ///
    /// # Panics
    /// Panics if the source hands out arrivals that move backwards in
    /// time, or a job wider than a node.
    pub fn step(&mut self) -> ServiceStep {
        if self.lookahead.is_none() {
            match self.source.poll() {
                SourcePoll::Job(job) => self.lookahead = Some(job),
                SourcePoll::Pending => return ServiceStep::Pending,
                SourcePoll::Closed => return ServiceStep::Closed,
            }
        }
        let head = self.lookahead.take().expect("just filled");
        let t = head.arrival;
        assert!(
            t.total_cmp(&self.last_cycle).is_ge(),
            "source went backwards: arrival {t} before cycle {}",
            self.last_cycle
        );
        // Group the burst: every immediately-available job at the
        // bitwise-same instant (the grouping the batch epoch driver
        // uses), holding the first later arrival as lookahead.
        let mut burst = vec![head];
        while let SourcePoll::Job(job) = self.source.poll() {
            if job.arrival.total_cmp(&t).is_eq() {
                burst.push(job);
            } else {
                self.lookahead = Some(job);
                break;
            }
        }
        let jobs = burst.len();
        self.cycle(t, burst);
        ServiceStep::Cycle { time: t, jobs }
    }

    /// One scheduling cycle at instant `t`: advance the non-quiescent
    /// nodes, then route every job of the burst.
    fn cycle(&mut self, t: f64, burst: Vec<ClusterJob>) {
        self.stats.cycles += 1;
        self.advance_cluster(t);
        for job in burst {
            let work = job.solo_time(self.suite);
            let started = Instant::now();
            let node = self.selector.select(job.gpus, work, self.drive.loads());
            self.latencies.push(started.elapsed().as_secs_f64());
            self.stats.decisions += 1;
            self.drive.place(node, job);
        }
        self.last_cycle = t;
    }

    /// Advance the dirty set (or, under [`CycleMode::Full`], every
    /// node) to `t` and refresh the touched load snapshots.
    fn advance_cluster(&mut self, t: f64) {
        self.drive.note_round();
        for node in 0..self.cfg.nodes {
            if self.cfg.mode == CycleMode::Incremental && self.drive.node_is_quiescent(node) {
                self.stats.nodes_skipped += 1;
            } else {
                self.drive.advance_node_to(node, t);
                self.stats.nodes_replanned += 1;
            }
        }
    }

    /// An empty cycle at instant `t`: advance the dirty set with no
    /// arrivals to place. This is how idle time passes for a live
    /// service — deferred dispatches run, reservation wakeups fire,
    /// and [`SchedulerService::next_wakeup`] reflects the settled
    /// state. The caller promises no arrival earlier than `t` will be
    /// ingested afterwards (the same monotonicity the sources already
    /// guarantee).
    ///
    /// # Panics
    /// Panics if `t` precedes the last cycle.
    pub fn settle(&mut self, t: f64) {
        assert!(
            t.total_cmp(&self.last_cycle).is_ge(),
            "settle at {t} before cycle {}",
            self.last_cycle
        );
        self.stats.wake_cycles += 1;
        self.advance_cluster(t);
        self.last_cycle = t;
    }

    /// Run one idle cycle exactly at the earliest dispatcher wakeup
    /// hint, if any — the service's cycle-timer consumption of
    /// [`Dispatcher::next_wakeup`](hrp_cluster::sim::Dispatcher::next_wakeup).
    /// Returns the instant it woke at.
    pub fn wake_cycle(&mut self) -> Option<f64> {
        let wake = self.next_wakeup()?;
        self.settle(wake);
        Some(wake)
    }

    /// Drive [`SchedulerService::step`] until the source closes,
    /// serving wakeup hints while it pends. Intended for sources that
    /// eventually close (finite traces, load generators, channels
    /// whose producers hang up); a live deployment drives `step` /
    /// `settle` itself.
    pub fn run_to_close(&mut self) {
        loop {
            match self.step() {
                ServiceStep::Cycle { .. } => {}
                ServiceStep::Pending => {
                    if self.wake_cycle().is_none() {
                        std::thread::yield_now();
                    }
                }
                ServiceStep::Closed => break,
            }
        }
    }

    /// Drain every node to the end of time and report. The final
    /// drain consumes remaining wakeup hints internally, so a blocked
    /// queue behind a reservation still completes.
    ///
    /// # Panics
    /// Panics if a node's dispatcher strands jobs (the per-node
    /// deadlock check).
    #[must_use]
    pub fn finish(mut self) -> ServeReport {
        let report = self.drive.finish();
        ServeReport {
            report,
            stats: self.stats,
            latency: LatencySummary::from_seconds(&self.latencies),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ChannelSource, TraceSource};
    use hrp_cluster::backfill::BackfillPolicy;
    use hrp_cluster::multinode::MultiNodeSim;
    use hrp_cluster::trace::{generate, TraceConfig, TraceKind};
    use hrp_gpusim::GpuArch;

    fn suite() -> Suite {
        Suite::paper_suite(&GpuArch::a100())
    }

    /// The satellite contract for wakeup hints: an idle service whose
    /// only job is blocked behind an advance reservation sleeps until
    /// *exactly* the hinted reservation expiry, wakes there, and the
    /// job starts at that instant.
    #[test]
    fn idle_service_wakes_exactly_at_the_hinted_reservation_start() {
        let s = suite();
        let (tx, src) = ChannelSource::channel();
        let mut svc = SchedulerService::with_dispatchers(
            &s,
            ServeConfig::new(1, 2),
            SelectorKind::Easy,
            src,
            |_| {
                PlacementDispatcher::Backfill(
                    // GPUs are reserved over [5, 30), so a 2-GPU job
                    // arriving at 10 cannot start before 30.
                    BackfillPlanner::new(BackfillPolicy::Easy, 2).with_reservation(5.0, 25.0, 2),
                )
            },
        );
        tx.send(ClusterJob::new(0, "lavaMD", 10.0, 2, &s)).unwrap();
        assert_eq!(
            svc.step(),
            ServiceStep::Cycle {
                time: 10.0,
                jobs: 1
            }
        );
        // Absorb the arrival (dispatch at 10 is blocked by the
        // reservation); the planner now hints its expiry.
        svc.settle(11.0);
        assert_eq!(svc.next_wakeup(), Some(30.0), "hint is the expiry");
        assert_eq!(svc.wake_cycle(), Some(30.0), "service wakes exactly there");
        drop(tx);
        assert_eq!(svc.step(), ServiceStep::Closed);
        let report = svc.finish();
        // lavaMD on 2 GPUs runs 19 s: start 30, finish 49.
        let makespan = report.report.aggregate.makespan;
        assert!((makespan - 49.0).abs() < 1e-9, "makespan {makespan}");
        assert_eq!(report.stats.wake_cycles, 2, "settle(11) + wake_cycle(30)");
        assert_eq!(report.stats.decisions, 1);
    }

    /// Incremental and full cycle modes are digest-identical (and both
    /// match the batch oracle); incremental provably re-plans fewer
    /// nodes on a thin trace.
    #[test]
    fn incremental_mode_matches_full_mode_with_fewer_replans() {
        let s = suite();
        // Thin bursty arrivals: bursts of 2–5 jobs touch a strict
        // subset of the 4 nodes and the long gaps let the rest drain
        // to quiescence, so the dirty set has nodes to skip.
        let cfg = TraceConfig::new(TraceKind::Bursty, 40, 9)
            .gang_share(0.25)
            .mean_gap(40.0);
        let run = |mode: CycleMode| {
            let mut svc = SchedulerService::new(
                &s,
                ServeConfig::new(4, 2).mode(mode),
                SelectorKind::LeastLoaded,
                TraceSource::new(&s, cfg.clone()),
            );
            svc.run_to_close();
            svc.finish()
        };
        let incremental = run(CycleMode::Incremental);
        let full = run(CycleMode::Full);
        assert_eq!(
            incremental.report.timeline.digest(),
            full.report.timeline.digest()
        );
        let mut selector = SelectorKind::LeastLoaded.build();
        let batch = MultiNodeSim::new(4, 2).run(&s, generate(&s, &cfg), selector.as_mut(), |_| {
            dispatcher_for(SelectorKind::LeastLoaded, 2, 0.0)
        });
        assert_eq!(
            incremental.report.timeline.digest(),
            batch.timeline.digest()
        );
        assert!(
            incremental.stats.nodes_replanned < full.stats.nodes_replanned,
            "dirty set saved work: {} vs {}",
            incremental.stats.nodes_replanned,
            full.stats.nodes_replanned
        );
        // Every cycle accounts for every node, skipped or re-planned.
        for r in [&incremental, &full] {
            assert_eq!(
                r.stats.nodes_replanned + r.stats.nodes_skipped,
                (r.stats.cycles + r.stats.wake_cycles) * 4
            );
        }
    }

    #[test]
    fn latency_summary_uses_nearest_rank_percentiles() {
        let micros: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-6).collect();
        let summary = LatencySummary::from_seconds(&micros);
        assert_eq!(summary.samples, 100);
        assert!((summary.p50_us - 50.0).abs() < 1e-9);
        assert!((summary.p99_us - 99.0).abs() < 1e-9);
        assert!((summary.max_us - 100.0).abs() < 1e-9);
        let empty = LatencySummary::from_seconds(&[]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.max_us, 0.0);
    }

    #[test]
    fn dispatcher_for_maps_selector_families() {
        for kind in [
            SelectorKind::RoundRobin,
            SelectorKind::LeastLoaded,
            SelectorKind::Policy,
        ] {
            assert!(matches!(
                dispatcher_for(kind, 2, 0.0),
                PlacementDispatcher::CoSched(_)
            ));
        }
        for kind in [
            SelectorKind::Fcfs,
            SelectorKind::Easy,
            SelectorKind::Conservative,
        ] {
            match dispatcher_for(kind, 2, 0.25) {
                PlacementDispatcher::Backfill(p) => {
                    assert_eq!(p.policy(), kind.backfill_policy().unwrap());
                    assert!((p.walltime_err() - 0.25).abs() < 1e-12);
                }
                PlacementDispatcher::CoSched(_) => panic!("{} must backfill", kind.name()),
            }
        }
    }
}
