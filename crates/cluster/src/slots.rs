//! A slot tree: free-GPU capacity as a step function over the
//! timeline.
//!
//! [`TreeSlotSet`] keeps the number of free GPUs at every future
//! instant as a sorted map from segment start time to the capacity
//! that holds until the next boundary (the classic *slot set* of
//! batch-scheduler backfilling literature). Claiming a window splits
//! at most two segments (`O(log n)`) and decrements the segments in
//! between; releasing restores them; adjacent segments with equal
//! capacity coalesce back into one, so the tree stays proportional to
//! the number of *distinct* capacity steps, not the number of
//! operations.
//!
//! The final segment always extends to `+∞` at full capacity — every
//! claim must have a finite end — so [`TreeSlotSet::earliest_fit`]
//! always terminates: a window that fits nowhere among the booked
//! segments fits in the infinite tail.
//!
//! ```
//! use hrp_cluster::slots::TreeSlotSet;
//!
//! let mut slots = TreeSlotSet::new(4);
//! slots.claim(0.0, 10.0, 3); // a 3-GPU placement until t = 10
//! assert_eq!(slots.capacity_at(5.0), 1);
//! // A 2-GPU, 4-second window first fits when the placement ends.
//! assert_eq!(slots.earliest_fit(0.0, 2, 4.0), 10.0);
//! slots.release(0.0, 10.0, 3);
//! assert_eq!(slots.earliest_fit(0.0, 2, 4.0), 0.0);
//! ```

use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Unbounded};

/// Total-order wrapper over `f64` segment boundaries (via
/// [`f64::total_cmp`]) so times can key a `BTreeMap`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Free-GPU capacity over the timeline as a coalesced step function.
///
/// See the [module docs](self) for the representation and the
/// worked example.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSlotSet {
    total: usize,
    /// Segment start → free capacity until the next boundary. The
    /// first key is `-∞`; the last segment extends to `+∞` and (by
    /// the finite-claim rule) always carries `total`.
    segs: BTreeMap<TimeKey, usize>,
}

impl TreeSlotSet {
    /// An empty timeline: `total` GPUs free at every instant.
    ///
    /// # Panics
    /// Panics if `total` is zero.
    #[must_use]
    pub fn new(total: usize) -> Self {
        assert!(total >= 1, "a slot set needs at least one GPU");
        let mut segs = BTreeMap::new();
        segs.insert(TimeKey(f64::NEG_INFINITY), total);
        Self { total, segs }
    }

    /// The cluster-wide GPU count the capacity can never exceed.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of capacity segments currently held (a coalescing
    /// diagnostic: adjacent segments never share a capacity).
    #[must_use]
    pub fn n_segments(&self) -> usize {
        self.segs.len()
    }

    /// Free capacity at instant `t`.
    #[must_use]
    pub fn capacity_at(&self, t: f64) -> usize {
        *self
            .segs
            .range(..=TimeKey(t))
            .next_back()
            .expect("first segment starts at -inf")
            .1
    }

    /// The segment covering `t`: its capacity and the time the next
    /// boundary starts (`+∞` for the tail segment).
    fn segment_at(&self, t: f64) -> (usize, f64) {
        let cap = self.capacity_at(t);
        let end = self
            .segs
            .range((Excluded(TimeKey(t)), Unbounded))
            .next()
            .map_or(f64::INFINITY, |(k, _)| k.0);
        (cap, end)
    }

    /// Ensure a boundary exists exactly at `t` (splitting the segment
    /// covering it), so a range update can start or stop there.
    fn split(&mut self, t: f64) {
        let cap = self.capacity_at(t);
        self.segs.entry(TimeKey(t)).or_insert(cap);
    }

    /// Remove boundaries in `[start, end]` whose capacity equals the
    /// preceding segment's, restoring the coalescing invariant after
    /// a range update.
    fn coalesce(&mut self, start: f64, end: f64) {
        let keys: Vec<TimeKey> = self
            .segs
            .range(TimeKey(start)..=TimeKey(end))
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            let cap = self.segs[&k];
            let prev = self
                .segs
                .range(..k)
                .next_back()
                .map(|(_, v)| *v)
                .expect("first segment starts at -inf");
            if prev == cap {
                self.segs.remove(&k);
            }
        }
    }

    /// Subtract `gpus` from every instant of `[start, end)`.
    ///
    /// # Panics
    /// Panics if the window is empty or unbounded, or if any covered
    /// segment has fewer than `gpus` free (the caller double-booked).
    pub fn claim(&mut self, start: f64, end: f64, gpus: usize) {
        self.update(start, end, gpus, false);
    }

    /// Subtract *up to* `gpus` from every instant of `[start, end)`,
    /// clamping per segment at zero instead of panicking. Used to
    /// overlay advance reservations onto a release profile that may
    /// already book the same GPUs.
    pub fn claim_up_to(&mut self, start: f64, end: f64, gpus: usize) {
        self.update(start, end, gpus, true);
    }

    fn update(&mut self, start: f64, end: f64, gpus: usize, clamp: bool) {
        assert!(
            start.is_finite() && end.is_finite() && start < end,
            "claim window [{start}, {end}) must be finite and non-empty"
        );
        if gpus == 0 {
            return;
        }
        self.split(start);
        self.split(end);
        let keys: Vec<TimeKey> = self
            .segs
            .range(TimeKey(start)..TimeKey(end))
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            let cap = self.segs.get_mut(&k).expect("key just collected");
            if clamp {
                *cap -= gpus.min(*cap);
            } else {
                assert!(
                    *cap >= gpus,
                    "double-booked: {gpus} GPUs claimed at t = {} with only {cap} free",
                    k.0
                );
                *cap -= gpus;
            }
        }
        self.coalesce(start, end);
    }

    /// Add `gpus` back to every instant of `[start, end)`.
    ///
    /// # Panics
    /// Panics if the window is empty or unbounded, or if the release
    /// would push any segment above the cluster total (releasing
    /// capacity that was never claimed).
    pub fn release(&mut self, start: f64, end: f64, gpus: usize) {
        assert!(
            start.is_finite() && end.is_finite() && start < end,
            "release window [{start}, {end}) must be finite and non-empty"
        );
        if gpus == 0 {
            return;
        }
        self.split(start);
        self.split(end);
        let keys: Vec<TimeKey> = self
            .segs
            .range(TimeKey(start)..TimeKey(end))
            .map(|(k, _)| *k)
            .collect();
        let total = self.total;
        for k in keys {
            let cap = self.segs.get_mut(&k).expect("key just collected");
            assert!(
                *cap + gpus <= total,
                "over-release: {gpus} GPUs freed at t = {} with {cap}/{total} already free",
                k.0
            );
            *cap += gpus;
        }
        self.coalesce(start, end);
    }

    /// Earliest `t ≥ after` at which `gpus` GPUs stay free for the
    /// whole window `[t, t + duration)`.
    ///
    /// Run-length scan over the segments: a candidate start slides
    /// past every blocking segment it meets, and the `+∞`-capacity
    /// tail guarantees termination.
    ///
    /// # Panics
    /// Panics if `gpus` exceeds the cluster total (no window could
    /// ever fit) or `duration` is not a positive finite time.
    #[must_use]
    pub fn earliest_fit(&self, after: f64, gpus: usize, duration: f64) -> f64 {
        assert!(
            gpus <= self.total,
            "a {gpus}-GPU window can never fit on {} GPUs",
            self.total
        );
        assert!(
            duration.is_finite() && duration > 0.0 && after.is_finite(),
            "earliest_fit needs a finite start and positive duration"
        );
        if gpus == 0 {
            return after;
        }
        let mut cand = after;
        loop {
            let mut t = cand;
            loop {
                let (cap, end) = self.segment_at(t);
                if cap < gpus {
                    // Blocked: restart just past this segment. `end` is
                    // finite because the tail holds the full total.
                    cand = end;
                    break;
                }
                if end >= cand + duration {
                    return cand;
                }
                t = end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_one_full_segment() {
        let s = TreeSlotSet::new(4);
        assert_eq!(s.n_segments(), 1);
        assert_eq!(s.capacity_at(0.0), 4);
        assert_eq!(s.capacity_at(1e12), 4);
        assert_eq!(s.earliest_fit(3.0, 4, 100.0), 3.0);
    }

    #[test]
    fn claim_release_round_trip_restores_the_tree() {
        let mut s = TreeSlotSet::new(4);
        let fresh = s.clone();
        s.claim(1.0, 5.0, 2);
        s.claim(3.0, 8.0, 1);
        assert_eq!(s.capacity_at(4.0), 1);
        s.release(3.0, 8.0, 1);
        s.release(1.0, 5.0, 2);
        assert_eq!(s, fresh, "round trip must coalesce back to one segment");
    }

    #[test]
    fn adjacent_equal_segments_coalesce() {
        let mut s = TreeSlotSet::new(2);
        s.claim(0.0, 5.0, 1);
        s.claim(5.0, 10.0, 1);
        // [0, 10) at capacity 1 is one segment plus the -inf head and
        // the tail boundary at 10.
        assert_eq!(s.n_segments(), 3);
        assert_eq!(s.capacity_at(5.0), 1);
    }

    #[test]
    fn earliest_fit_slides_past_holes_too_short() {
        let mut s = TreeSlotSet::new(2);
        // Busy [0, 10) and [12, 20) with both GPUs; the [10, 12) hole
        // is too short for a 3-second window.
        s.claim(0.0, 10.0, 2);
        s.claim(12.0, 20.0, 2);
        assert_eq!(s.earliest_fit(0.0, 1, 3.0), 20.0);
        // ... but a 2-second window backfills into the hole.
        assert_eq!(s.earliest_fit(0.0, 1, 2.0), 10.0);
    }

    #[test]
    fn claim_up_to_clamps_at_zero() {
        let mut s = TreeSlotSet::new(2);
        s.claim(0.0, 10.0, 2);
        s.claim_up_to(5.0, 15.0, 1); // [5, 10) already empty: clamps
        assert_eq!(s.capacity_at(7.0), 0);
        assert_eq!(s.capacity_at(12.0), 1);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn over_claim_panics() {
        let mut s = TreeSlotSet::new(2);
        s.claim(0.0, 10.0, 2);
        s.claim(5.0, 6.0, 1);
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let mut s = TreeSlotSet::new(2);
        s.release(0.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn unbounded_claims_are_rejected() {
        let mut s = TreeSlotSet::new(2);
        s.claim(0.0, f64::INFINITY, 1);
    }
}
